// Policy-conformance suite: every policy registered with the src/sched
// registry must uphold the Table 2 interface contract on BOTH substrates —
// the simulated engines (src/libos) and the real host runtime (src/runtime).
//
// Checked per policy:
//   - no lost / no duplicated tasks (everything submitted completes exactly
//     once, queues drain to empty)
//   - work conservation (parallel makespan beats serial execution)
//   - the engine honors the preemption flag / the policy's tick verdict
//
// The same policy objects run under both drivers; this suite is the
// executable form of the paper's generality claim.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/libos/central_engine.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/standard.h"
#include "src/runtime/uthread.h"
#include "src/sched/registry.h"

namespace skyloft {
namespace {

const std::vector<RegisteredPolicy>& StandardPolicies() {
  RegisterStandardPolicies();
  return RegisteredPolicies();
}

std::string PolicyParamName(const ::testing::TestParamInfo<RegisteredPolicy>& info) {
  return info.param.name;
}

// ---- Simulated substrate ----

struct SimRig {
  explicit SimRig(int num_cores) {
    MachineConfig mcfg;
    mcfg.num_cores = num_cores;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

PerCpuEngineConfig PerCpuCfg(int cores) {
  PerCpuEngineConfig cfg;
  for (int i = 0; i < cores; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.base.local_switch_ns = 100;
  cfg.timer_hz = 100'000;
  return cfg;
}

CentralizedEngineConfig CentralCfg(int workers, DurationNs quantum) {
  CentralizedEngineConfig cfg;
  for (int i = 0; i < workers; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.dispatcher_core = workers;
  cfg.quantum = quantum;
  cfg.base.local_switch_ns = 100;
  return cfg;
}

class SimConformanceTest : public ::testing::TestWithParam<RegisteredPolicy> {};

// Drives `engine` through plain tasks plus tasks that block mid-life and get
// woken, then checks nothing was lost or duplicated and the queues drained.
template <typename EngineT>
void RunLifecycleWorkload(SimRig& rig, EngineT& engine) {
  App* app = engine.CreateApp("a");
  engine.Start();
  for (int i = 0; i < 16; i++) {
    engine.Submit(engine.NewTask(app, Micros(10)));
  }
  for (int i = 0; i < 8; i++) {
    Task* t = engine.NewTask(app, Micros(10), /*kind=*/1);
    t->on_segment_end = [&rig, &engine](Task* task) {
      if (task->kind == 1) {
        task->kind = 2;  // the post-wakeup segment finishes normally
        rig.sim.ScheduleAfter(Micros(5), [&engine, task] { engine.WakeTask(task, Micros(10)); });
        return SegmentAction::kBlock;
      }
      return SegmentAction::kFinish;
    };
    engine.Submit(t);
  }
  rig.sim.RunUntil(Millis(50));
  EXPECT_EQ(engine.stats().completed, 24u) << "lost or duplicated tasks";
  EXPECT_EQ(engine.policy().QueuedTasks(), 0u) << "runqueues must drain";
}

TEST_P(SimConformanceTest, NoLostNoDuplicatedTasks) {
  const RegisteredPolicy& entry = GetParam();
  auto policy = entry.make();
  if (entry.centralized) {
    SimRig rig(3);
    CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), policy.get(),
                             CentralCfg(2, Micros(30)));
    RunLifecycleWorkload(rig, engine);
  } else {
    SimRig rig(2);
    PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), policy.get(),
                        PerCpuCfg(2));
    RunLifecycleWorkload(rig, engine);
  }
}

TEST_P(SimConformanceTest, WorkConservation) {
  const RegisteredPolicy& entry = GetParam();
  auto policy = entry.make();
  // 8 x 200us over 2 workers: serial needs 1.6ms, work-conserving ~0.8ms.
  // All tasks are hinted at worker 0, so the second worker only stays busy
  // via sched_balance / the dispatcher.
  const TimeNs deadline = Micros(1200);
  if (entry.centralized) {
    SimRig rig(3);
    CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), policy.get(),
                             CentralCfg(2, Micros(30)));
    App* app = engine.CreateApp("a");
    engine.Start();
    for (int i = 0; i < 8; i++) {
      engine.Submit(engine.NewTask(app, Micros(200)));
    }
    rig.sim.RunUntil(deadline);
    EXPECT_EQ(engine.stats().completed, 8u) << "idle worker left runnable work waiting";
  } else {
    SimRig rig(2);
    PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), policy.get(),
                        PerCpuCfg(2));
    App* app = engine.CreateApp("a");
    engine.Start();
    for (int i = 0; i < 8; i++) {
      engine.Submit(engine.NewTask(app, Micros(200)), /*worker_hint=*/0);
    }
    rig.sim.RunUntil(deadline);
    EXPECT_EQ(engine.stats().completed, 8u) << "idle worker left runnable work waiting";
  }
}

TEST_P(SimConformanceTest, HonorsPreemptionFlag) {
  const RegisteredPolicy& entry = GetParam();
  auto policy = entry.make();
  // One core, a 2ms hog submitted first, a 10us task second. With
  // preemption off (flag false / zero quantum), the short task MUST wait
  // behind the hog no matter what the policy's tick would have decided.
  auto check = [](auto& rig, auto& engine) {
    App* app = engine.CreateApp("a");
    engine.Start();
    engine.Submit(engine.NewTask(app, Millis(2), /*kind=*/0));
    engine.Submit(engine.NewTask(app, Micros(10), /*kind=*/1));
    rig.sim.RunUntil(Millis(10));
    EXPECT_EQ(engine.stats().completed, 2u);
    EXPECT_GT(engine.stats().latency_by_kind[1].Max(), Millis(1))
        << "short task ran early: the engine preempted with preemption disabled";
  };
  if (entry.centralized) {
    SimRig rig(2);
    CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), policy.get(),
                             CentralCfg(1, /*quantum=*/0));
    check(rig, engine);
  } else {
    SimRig rig(1);
    auto cfg = PerCpuCfg(1);
    cfg.base.preemption = false;
    PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), policy.get(), cfg);
    check(rig, engine);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimConformanceTest,
                         ::testing::ValuesIn(StandardPolicies()), PolicyParamName);

// ---- Host substrate ----

class HostConformanceTest : public ::testing::TestWithParam<RegisteredPolicy> {};

TEST_P(HostConformanceTest, NoLostNoDuplicatedUThreads) {
  auto policy = GetParam().make();
  RuntimeOptions opts{.workers = 2};
  opts.sched.custom_policy = policy.get();
  Runtime rt(opts);
  constexpr int kThreads = 300;
  auto slots = std::make_unique<std::atomic<int>[]>(kThreads);
  for (int i = 0; i < kThreads; i++) {
    slots[i].store(0);
  }
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < kThreads; i++) {
      children.push_back(Runtime::Spawn([&slots, i] {
        slots[i].fetch_add(1);
        Runtime::Yield();
        slots[i].fetch_add(1);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  for (int i = 0; i < kThreads; i++) {
    EXPECT_EQ(slots[i].load(), 2) << "uthread " << i << " lost or run twice under "
                                  << GetParam().name;
  }
  EXPECT_EQ(rt.policy_name(), std::string(policy->Name())) << "runtime must use the custom policy";
}

TEST_P(HostConformanceTest, TimerTicksDoNotLoseWork) {
  // The signal timer delivers sched_timer_tick to the policy while real
  // compute runs; whatever the policy decides, all work must complete.
  auto policy = GetParam().make();
  RuntimeOptions opts{.workers = 2, .preempt_period_us = 1000};
  opts.sched.custom_policy = policy.get();
  Runtime rt(opts);
  std::atomic<long long> total{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 4; i++) {
      children.push_back(Runtime::Spawn([&] {
        long long local = 0;
        for (int j = 0; j < 500'000; j++) {
          local += j % 5;
        }
        total.fetch_add(local);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  long long expected_one = 0;
  for (int j = 0; j < 500'000; j++) {
    expected_one += j % 5;
  }
  EXPECT_EQ(total.load(), expected_one * 4);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, HostConformanceTest,
                         ::testing::ValuesIn(StandardPolicies()), PolicyParamName);

// ---- Host preemption-flag honoring (policy-specific semantics) ----

TEST(HostPolicySemanticsTest, FifoNeverPreempts) {
  RuntimeOptions opts{.workers = 1, .preempt_period_us = 1000};
  opts.sched.policy = RuntimePolicy::kFifo;
  Runtime rt(opts);
  std::atomic<long long> sink{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 3; i++) {
      children.push_back(Runtime::Spawn([&] {
        long long local = 0;
        for (int j = 0; j < 2'000'000; j++) {
          local += j % 3;
        }
        sink.fetch_add(local);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  // Ticks fired (the timer ran for milliseconds of compute) but FIFO's
  // sched_timer_tick always says no — the engine must honor that.
  EXPECT_EQ(rt.preemptions(), 0u);
  EXPECT_EQ(std::string(rt.policy_name()), "skyloft-rr");  // RR with infinite slice
}

TEST(HostPolicySemanticsTest, RoundRobinPreemptsCpuHog) {
  RuntimeOptions opts{.workers = 1, .preempt_period_us = 1000};
  opts.sched.policy = RuntimePolicy::kRoundRobin;
  opts.sched.time_slice_us = 500;
  Runtime rt(opts);
  std::atomic<bool> hog_running{true};
  bool other_ran = false;
  rt.Run([&] {
    UThread* hog = Runtime::Spawn([&] {
      volatile std::uint64_t x = 0;
      while (hog_running.load(std::memory_order_relaxed)) {
        x = x + 1;
      }
    });
    UThread* other = Runtime::Spawn([&] {
      other_ran = true;
      hog_running.store(false);
    });
    Runtime::Join(other);
    Runtime::Join(hog);
  });
  EXPECT_TRUE(other_ran);
  EXPECT_GT(rt.preemptions(), 0u);
}

// ---- Driver selection (SchedPolicy::SupportsLockFree capability) ----
//
// The host scheduler runs a policy on one of two drivers: the lock-free
// two-level runqueue (mailbox -> Chase-Lev deque, DESIGN.md section 9) when
// the policy declares its discipline is FIFO + steal-half, or the shard-mutex
// driver otherwise. The conformance suites above already exercise both (the
// registry's "ws" entry rides lock-free, everything else rides the mutex);
// these tests pin the selection logic itself and the force_locked escape.

TEST(HostDriverSelectionTest, WorkStealingSelectsLockFreeDriver) {
  Runtime rt(RuntimeOptions{.workers = 2});  // default policy: work stealing
  EXPECT_TRUE(rt.lock_free_sched());
  EXPECT_EQ(std::string(rt.policy_name()), "skyloft-ws");
}

TEST(HostDriverSelectionTest, OrderingPoliciesKeepShardMutexDriver) {
  for (RuntimePolicy p : {RuntimePolicy::kCfs, RuntimePolicy::kEevdf,
                          RuntimePolicy::kRoundRobin, RuntimePolicy::kFifo}) {
    RuntimeOptions opts{.workers = 2};
    opts.sched.policy = p;
    Runtime rt(opts);
    EXPECT_FALSE(rt.lock_free_sched());
  }
}

TEST(HostDriverSelectionTest, ForceLockedPinsMutexDriverAndStillConforms) {
  // force_locked runs work stealing through the policy's own Table 2 methods
  // under the shard mutex (the benchmark baseline path); the lifecycle
  // workload must behave identically to the lock-free driver.
  RuntimeOptions opts{.workers = 2};
  opts.sched.force_locked = true;
  Runtime rt(opts);
  EXPECT_FALSE(rt.lock_free_sched());
  EXPECT_EQ(std::string(rt.policy_name()), "skyloft-ws");
  constexpr int kThreads = 300;
  auto slots = std::make_unique<std::atomic<int>[]>(kThreads);
  for (int i = 0; i < kThreads; i++) {
    slots[i].store(0);
  }
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < kThreads; i++) {
      children.push_back(Runtime::Spawn([&slots, i] {
        slots[i].fetch_add(1);
        Runtime::Yield();
        slots[i].fetch_add(1);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  for (int i = 0; i < kThreads; i++) {
    EXPECT_EQ(slots[i].load(), 2) << "uthread " << i << " lost or run twice";
  }
}

// ---- Quantum plumbing (ISSUE 9) ----

// Regression: HostSchedOptions::time_slice_us was silently dropped for CFS
// and EEVDF — MakeHostPolicy built CfsParams{}/EevdfParams{} and ignored the
// override, despite the host_sched.h contract. Every built-in policy that
// has a slice must report the override through QuantumFor. (FIFO is exempt:
// it is RR with an infinite slice by definition.)
TEST(HostQuantumPlumbingTest, TimeSliceOverrideReachesEveryBuiltinPolicy) {
  for (RuntimePolicy p : {RuntimePolicy::kRoundRobin, RuntimePolicy::kCfs,
                          RuntimePolicy::kEevdf, RuntimePolicy::kWorkStealing}) {
    RuntimeOptions opts{.workers = 1};
    opts.sched.policy = p;
    opts.sched.time_slice_us = 300;
    Runtime rt(opts);
    EXPECT_EQ(rt.QuantumFor(0), Micros(300))
        << "policy " << rt.policy_name() << " dropped the time_slice_us override";
  }
}

// SetQuantum mid-run must take effect on the live driver — the lock-free
// path rereads the per-worker atomic quantum on every Tick (it used to latch
// it once at driver selection) — without spurious preemptions while the
// quantum is long and without dropped ones once it is short. Runs under the
// TSan CI job: the controller thread writes the quantum while workers and
// the signal path read it.
void MidRunSetQuantumTakesEffect(bool force_locked) {
  SchedTracer tracer(1 << 16);
  RuntimeOptions opts{.workers = 1, .preempt_period_us = 500};
  opts.sched.force_locked = force_locked;        // ws policy on both drivers
  opts.sched.time_slice_us = 1'000'000;          // phase A: 1 s quantum
  opts.tracer = &tracer;
  Runtime rt(opts);
  const auto spin_for = [](std::int64_t us) {
    const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
    volatile std::uint64_t x = 0;
    while (std::chrono::steady_clock::now() < until) {
      x = x + 1;
    }
  };
  std::uint64_t phase_a_preemptions = 0;
  bool released_by_other = false;
  rt.Run([&] {
    // Phase A: two bounded spinners keep the queue non-empty while ticks
    // fire; nothing runs close to the 1 s quantum, so any preemption here
    // is spurious.
    UThread* a = Runtime::Spawn([&] { spin_for(10'000); });
    UThread* b = Runtime::Spawn([&] { spin_for(10'000); });
    Runtime::Join(a);
    Runtime::Join(b);
    phase_a_preemptions = rt.preemptions();

    // Phase B: tighten mid-run. The hog can only finish if the new 500 us
    // quantum actually preempts it so the releaser gets the worker.
    rt.SetQuantum(Micros(500), SchedPolicy::kAllWorkers);
    std::atomic<bool> release{false};
    UThread* hog = Runtime::Spawn([&] {
      const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(20);
      volatile std::uint64_t x = 0;
      while (!release.load(std::memory_order_relaxed)) {
        x = x + 1;
        if (std::chrono::steady_clock::now() >= give_up) {
          return;  // preemption never came; fail below instead of hanging
        }
      }
      released_by_other = true;
    });
    UThread* other = Runtime::Spawn([&] { release.store(true); });
    Runtime::Join(hog);
    Runtime::Join(other);
  });
  EXPECT_EQ(phase_a_preemptions, 0u) << "spurious preemption under a 1 s quantum";
  EXPECT_TRUE(released_by_other) << "SetQuantum(500us) mid-run never preempted the hog";
  EXPECT_GT(rt.preemptions(), 0u);
  // The timer genuinely ran during phase A (signals were delivered or
  // deferred), so the zero-preemption count means "honored the quantum",
  // not "timer never fired".
  EXPECT_GT(tracer.CountOf(TraceEventType::kSignal) +
                tracer.CountOf(TraceEventType::kDeferred),
            0u);
}

TEST(HostQuantumPlumbingTest, SetQuantumMidRunLockFreeDriver) {
  MidRunSetQuantumTakesEffect(/*force_locked=*/false);
}

TEST(HostQuantumPlumbingTest, SetQuantumMidRunShardMutexDriver) {
  MidRunSetQuantumTakesEffect(/*force_locked=*/true);
}

// Pin for the ISSUE 9 run-charging audit: LfRunData::ran is charged exactly
// once per dispatched span and reset on dequeue; a deferred preemption
// signal does not re-charge the span it already billed and double-fire next
// period. Observable contract: tasks that always yield well inside the
// quantum are never preempted, however much total CPU they accumulate — if
// charge leaked across spans (or a deferral re-billed one), the quantum
// would trip despite every span being ~100x shorter than it.
TEST(HostQuantumPlumbingTest, RunChargingResetsPerDispatchedSpan) {
  RuntimeOptions opts{.workers = 1, .preempt_period_us = 500};
  opts.sched.time_slice_us = 20'000;  // 20 ms quantum
  Runtime rt(opts);
  const auto burst = [] {
    const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    volatile std::uint64_t x = 0;
    while (std::chrono::steady_clock::now() < until) {
      x = x + 1;
    }
  };
  rt.Run([&] {
    // Two cooperative tasks interleave, keeping the queue non-empty so the
    // ws policy WOULD preempt if a span ever read as >= 20 ms. Each task
    // accumulates ~40 ms total CPU in ~200 us slices.
    std::vector<UThread*> tasks;
    for (int t = 0; t < 2; t++) {
      tasks.push_back(Runtime::Spawn([&burst] {
        for (int i = 0; i < 200; i++) {
          burst();
          Runtime::Yield();
        }
      }));
    }
    for (UThread* t : tasks) {
      Runtime::Join(t);
    }
  });
  EXPECT_EQ(rt.preemptions(), 0u)
      << "a span was charged more than its own run time (cross-span leak or "
         "deferral double-charge)";
}

TEST(HostPolicySemanticsTest, ExternalSubmissionsArePlaced) {
  // Run()'s main uthread enters from outside the runtime; the scheduler
  // must route it through idle-first/least-loaded placement and count it.
  Runtime rt(RuntimeOptions{.workers = 2});
  rt.Run([] {});
  EXPECT_GE(rt.external_placements(), 1u);
}

}  // namespace
}  // namespace skyloft
