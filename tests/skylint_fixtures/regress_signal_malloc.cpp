// PR 2 regression (bad variant): allocation reachable from the preemption
// signal handler. The handler interrupted glibc's malloc once already — a
// second allocation from signal context corrupts the per-pthread tcache.
// skylint's signal-unsafe-call rule (R3) walks the closure of every
// SKYLOFT_SIGNAL_SAFE root and flags the denylisted calls it can reach.
#include <cstdio>
#include <cstdlib>
#include <mutex>

#define SKYLOFT_SIGNAL_SAFE

void Publish(void* buffer);
void RecordSample();

// The original bug: the handler "just" bumped a histogram — which allocated
// a bucket two calls down.
SKYLOFT_SIGNAL_SAFE void PreemptSignalHandler(int signo) {
  (void)signo;
  RecordSample();
}

void RecordSample() {
  void* bucket = malloc(64);  // expect(signal-unsafe-call): 'malloc'
  Publish(bucket);
}

// Direct offenders inside another handler: stdio, operator new, locking.
std::mutex g_stats_mu;
long g_ticks;

SKYLOFT_SIGNAL_SAFE void TickSignalHandler(int signo) {
  (void)signo;
  std::printf("tick\n");  // expect(signal-unsafe-call): 'printf'
  int* scratch = new int[4];  // expect(signal-unsafe-call): operator new
  delete[] scratch;  // expect(signal-unsafe-call): operator delete
  g_stats_mu.lock();  // expect(signal-unsafe-call): 'lock'
  g_ticks++;
  g_stats_mu.unlock();
}
