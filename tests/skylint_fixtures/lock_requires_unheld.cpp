// Lock-discipline fixture (bad variant): a function annotated
// SKYLOFT_REQUIRES(queue_lock) — it touches the queue with no internal
// locking, by contract — is called without the lock visibly held (skylint
// R8, lock-requires-unheld). The race is silent data corruption, not a
// crash, which is why the contract is worth machine-checking.
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)
#define SKYLOFT_REQUIRES(l)

SKYLOFT_ACQUIRES(queue_lock) void LockQueue();
SKYLOFT_RELEASES(queue_lock) void UnlockQueue();
SKYLOFT_REQUIRES(queue_lock) void PushLocked(int value);

void Produce(int value) {
  PushLocked(value);  // expect(lock-requires-unheld): requires lock class 'queue_lock'
}
