// Config-coverage fixture: skylint's lexer skips preprocessor directive
// *lines* but lexes the code in BOTH branches of an #ifdef, so a violation
// inside `#ifdef SKYLOFT_IO_URING` is found even when analyzing the epoll
// configuration's compile_commands.json. This is what makes the epoll/uring
// CI matrix a double-check rather than the only line of defense.
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)

SKYLOFT_ACQUIRES(sq_lock) void SqLock();
SKYLOFT_RELEASES(sq_lock) void SqUnlock();
SKYLOFT_MAY_SWITCH void ParkUntilCqe();

#ifdef SKYLOFT_IO_URING
void SubmitAndWait() {
  SqLock();
  ParkUntilCqe();  // expect(lock-held-across-switch): held across call to 'ParkUntilCqe'
  SqUnlock();
}
#endif
