// Suppression semantics: a well-formed allow-comment — the rule list in
// parentheses, then a double-dash and a written reason — on the diagnostic's
// line (or the line above) silences it; a suppression with no reason or an
// unknown rule is itself reported as bad-suppression, which cannot be
// suppressed.
#include <atomic>

struct Worker {
  std::atomic<int> preempt_disable{0};
};

void CtxSwitchOut(Worker* worker);

// Well-formed: the intentional imbalance below is silenced, with a reason.
// skylint:allow(preempt-balance) -- fixture: scheduler re-arms the counter after the switch
void SwitchOutProtocol(Worker* worker) {
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  CtxSwitchOut(worker);
}

void Helper(Worker* worker);

// Missing the ` -- <reason>` tail: rejected, and the finding stays live.
// skylint:allow(preempt-balance) expect(bad-suppression): missing its justification
// expect-next(preempt-balance): exits with preempt-disable balance +1
void MissingReason(Worker* worker) {
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  Helper(worker);
}

// Unknown rule name: rejected even though a reason is present.
// skylint:allow(no-such-rule) -- looks fine otherwise expect(bad-suppression): unknown rule
void UnknownRule(Worker* worker) {
  Helper(worker);
}
