// Lock-discipline fixture (fixed variant): the two sanctioned shapes for
// waiting near a lock. skylint reports nothing here.
//
//   1. Drop the lock before the may-switch call and reacquire after — the
//      hold window stays switch-free.
//   2. Condvar pattern: the wait primitive itself is annotated
//      SKYLOFT_REQUIRES on the held lock, declaring that it releases the
//      lock around the park and reacquires before returning; a caller
//      holding that lock at the call is exempt from R5.
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)
#define SKYLOFT_REQUIRES(l)

SKYLOFT_ACQUIRES(table_lock) void LockTable();
SKYLOFT_RELEASES(table_lock) void UnlockTable();
SKYLOFT_MAY_SWITCH void ParkUntilChanged();
SKYLOFT_MAY_SWITCH SKYLOFT_REQUIRES(table_lock) void WaitTableChanged();

int LookupSlot(int key);

// Shape 1: wait outside the hold window.
int Lookup(int key) {
  ParkUntilChanged();
  LockTable();
  const int slot = LookupSlot(key);
  UnlockTable();
  return slot;
}

// Shape 2: condvar-style wait that manages the lock itself.
int LookupWhenChanged(int key) {
  LockTable();
  WaitTableChanged();
  const int slot = LookupSlot(key);
  UnlockTable();
  return slot;
}

// Shape 3: RAII guard scoped to exclude the wait — the guard's block closes
// before the may-switch call, so the hold window stays switch-free.
#include <mutex>

struct Registry {
  std::mutex mu;
  int revision = 0;
  void Publish();
};

void Registry::Publish() {
  {
    std::lock_guard<std::mutex> g(mu);
    ++revision;
  }
  ParkUntilChanged();
}
