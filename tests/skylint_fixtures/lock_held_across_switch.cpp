// Lock-discipline fixture (bad variant): a lock class is held across a call
// into the may-switch closure. If the callee parks this uthread, the lock
// stays held while other uthreads run on the worker — any of them spinning on
// the same lock deadlocks the worker (skylint R5, lock-held-across-switch).
//
// Modeled on the PR 6 incident class: an io_handles-style registry spinlock
// held across a park-capable wait.
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)

SKYLOFT_ACQUIRES(table_lock) void LockTable();
SKYLOFT_RELEASES(table_lock) void UnlockTable();
SKYLOFT_MAY_SWITCH void ParkUntilChanged();

int LookupSlot(int key);

int Lookup(int key) {
  LockTable();
  ParkUntilChanged();  // expect(lock-held-across-switch): lock class 'table_lock'
  const int slot = LookupSlot(key);
  UnlockTable();
  return slot;
}

// The std::lock_guard path: no annotation needed — the guarded expression's
// last identifier, qualified by the enclosing class, names the lock class.
#include <mutex>

struct Registry {
  std::mutex mu;
  int revision = 0;
  void Publish();
};

void Registry::Publish() {
  std::lock_guard<std::mutex> g(mu);
  ParkUntilChanged();  // expect(lock-held-across-switch): lock class 'Registry::mu'
  ++revision;
}
