// PR 2 regression (bad variant): preempt_disable incremented, then an early
// return leaves the worker with preemption permanently off — the signal
// handler defers forever and the uthread can never be preempted again.
// skylint's preempt-balance rule (R2) tracks the counter per exit path.
#include <atomic>

struct Worker {
  std::atomic<int> preempt_disable{0};
};

bool QueueEmpty();
void DispatchNext(Worker* worker);
void CtxSwitchOut(Worker* worker);

// The original bug: the early return forgets the fetch_sub.
void DispatchLocked(Worker* worker) {
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  if (QueueEmpty()) {
    return;  // expect(preempt-balance): return with preempt-disable balance +1
  }
  DispatchNext(worker);
  worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
}

// The subtler masking variant: the early-return arm is balanced, so a naive
// linear scan nets zero — but the fall-through path still exits at +1.
bool ConsumedWakeup(Worker* worker);

// expect-next(preempt-balance): exits with preempt-disable balance +1
void ParkLike(Worker* worker) {
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  if (ConsumedWakeup(worker)) {
    worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  CtxSwitchOut(worker);
}
