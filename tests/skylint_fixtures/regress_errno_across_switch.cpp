// PR 2 regression (bad variant): errno's thread-local location cached across
// a context switch. glibc's __errno_location is __attribute__((const)), so
// the compiler reuses one pointer for every `errno` in the frame — after the
// uthread migrates to another pthread the cached pointer names the WRONG
// thread's errno. skylint's tls-across-switch rule (R1b) flags raw errno on
// both sides of a may-switch call.
//
// Marker comments pin the diagnostics the golden test requires on those
// exact lines; the syntax is documented in tests/skylint_test.cpp.
#include <cerrno>

#define SKYLOFT_MAY_SWITCH

SKYLOFT_MAY_SWITCH void SwitchTo(void** save_sp, void* restore_sp);

void* g_sched_sp;
void* g_self_sp;

// The original bug: the preemption path saved errno, switched, and restored
// it through the same (compiler-cached) location.
void PreemptAndRestore() {
  const int saved_errno = errno;
  SwitchTo(&g_self_sp, g_sched_sp);
  errno = saved_errno;  // expect(tls-across-switch): accessed on both sides
}

thread_local int tl_pending;

// R1a variant: a pointer *derived* from TLS, bound before the switch and
// dereferenced after it.
int CachedTlsPointer() {
  int* pending = &tl_pending;
  SwitchTo(&g_self_sp, g_sched_sp);
  return *pending;  // expect(tls-across-switch): holds a TLS-derived address
}
