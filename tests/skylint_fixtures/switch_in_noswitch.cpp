// Bad variant for switch-in-noswitch (R4): a SKYLOFT_NO_SWITCH function
// transitively reaches the context-switch primitive through an unannotated
// helper; the may-switch set is a call-graph fixpoint, not a per-call check.
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_NO_SWITCH

SKYLOFT_MAY_SWITCH void CtxSwitch(void** save_sp, void* restore_sp);

void* g_sp;

// Unannotated: inherits may-switch from CtxSwitch via the fixpoint.
void Reschedule() {
  CtxSwitch(&g_sp, g_sp);
}

// Runs under a shard lock — a park here would deadlock the worker.
SKYLOFT_NO_SWITCH void EnqueueLocked() {
  Reschedule();  // expect(switch-in-noswitch): Reschedule -> CtxSwitch
}

// Contradictory annotations are themselves a finding.
SKYLOFT_NO_SWITCH SKYLOFT_MAY_SWITCH void Confused();  // expect(switch-in-noswitch): both
