// Lock-discipline fixture (fixed variant): the worker path parks through the
// runtime's sanctioned primitives instead of blocking the pthread. skylint
// reports nothing here.
//
//   - the fd read sits behind a WaitForReadable park loop in the same body
//     (the engine's edge-triggered contract: park, then drain until EAGAIN);
//   - config reload moved off the worker (nothing calls the SKYLOFT_BLOCKING
//     helper from worker context);
//   - the dispatch loop yields through the scheduler instead of usleep;
//   - `conn->read()` is a member call, not the read(2) syscall, and is
//     correctly left alone.
#define SKYLOFT_BLOCKING

struct Conn {
  int fd;
  long read();
};

long read(int fd, void* buf, unsigned long count);

void WaitForReadable(Conn* conn);
void YieldUthread();

SKYLOFT_BLOCKING void WaitForConfigReload();

void ServeRequest(Conn* conn) {
  char buf[64];
  WaitForReadable(conn);
  read(conn->fd, buf, 64);
  conn->read();
}

void WorkerLoop(Conn* conn) {
  for (;;) {
    YieldUthread();
    ServeRequest(conn);
  }
}

// Runs on a dedicated control thread, never on a worker.
void ControlThreadMain() {
  WaitForConfigReload();
}
