// Clean variant for switch-in-noswitch (R4): the NO_SWITCH function only
// calls leaf helpers, and the switch primitive is reached exclusively from
// unconstrained callers. skylint reports nothing here.
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_NO_SWITCH

SKYLOFT_MAY_SWITCH void CtxSwitch(void** save_sp, void* restore_sp);

void* g_sp;

int ComputePriority(int hint) {
  return hint * 2 + 1;
}

SKYLOFT_NO_SWITCH int PickNext(int hint) {
  return ComputePriority(hint);
}

// Unconstrained caller may switch freely.
void YieldLike() {
  CtxSwitch(&g_sp, g_sp);
}
