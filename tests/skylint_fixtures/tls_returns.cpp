// R1c: returning a TLS-derived address requires SKYLOFT_RETURNS_TLS, so the
// annotation is checked rather than trusted — an unannotated escape is how a
// caller ends up caching the address across a switch in the first place.
#define SKYLOFT_RETURNS_TLS

thread_local int tl_slot;

int* SlotAddress() {
  return &tl_slot;  // expect(tls-across-switch): SKYLOFT_RETURNS_TLS
}

// Annotated twin: same body, no finding.
SKYLOFT_RETURNS_TLS int* SlotAddressAnnotated() {
  return &tl_slot;
}
