// Lock-discipline fixture (fixed variant): the *Locked callee runs inside
// the lock's hold window — directly, or transitively through a helper whose
// derived summary shows it enters with the lock held (its own
// SKYLOFT_REQUIRES). skylint reports nothing here.
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)
#define SKYLOFT_REQUIRES(l)

SKYLOFT_ACQUIRES(queue_lock) void LockQueue();
SKYLOFT_RELEASES(queue_lock) void UnlockQueue();
SKYLOFT_REQUIRES(queue_lock) void PushLocked(int value);

void Produce(int value) {
  LockQueue();
  PushLocked(value);
  UnlockQueue();
}

// The requirement propagates: a REQUIRES wrapper may call the REQUIRES
// callee without reacquiring.
SKYLOFT_REQUIRES(queue_lock) void PushTwoLocked(int a, int b) {
  PushLocked(a);
  PushLocked(b);
}
