// PR 2 regression (fixed variant): errno is re-derived on each side of the
// switch through a SKYLOFT_RETURNS_TLS helper that the compiler cannot CSE
// (noinline + asm clobber), and the helper's result is dereferenced
// immediately instead of being cached. skylint reports nothing here.
#include <cerrno>

#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_RETURNS_TLS

SKYLOFT_MAY_SWITCH void SwitchTo(void** save_sp, void* restore_sp);

void* g_sched_sp;
void* g_self_sp;

SKYLOFT_RETURNS_TLS __attribute__((noinline)) int* CurrentErrnoLocation() {
  asm volatile("" ::: "memory");
  return &errno;
}

void PreemptAndRestore() {
  const int saved_errno = *CurrentErrnoLocation();
  SwitchTo(&g_self_sp, g_sched_sp);
  *CurrentErrnoLocation() = saved_errno;
}
