// PR 2 regression (fixed variant): every exit path re-enables preemption —
// the early return pairs its own fetch_sub and the fall-through path closes
// the guard after dispatch. skylint reports nothing here.
#include <atomic>

struct Worker {
  std::atomic<int> preempt_disable{0};
};

bool QueueEmpty();
void DispatchNext(Worker* worker);

void DispatchLocked(Worker* worker) {
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  if (QueueEmpty()) {
    worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  DispatchNext(worker);
  worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
}
