// Lock-discipline fixture (fixed variant): both transfer directions take the
// locks in the same global order (alpha before beta), so the
// acquired-while-holding graph has one edge and no cycle. skylint reports
// nothing here.
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)

SKYLOFT_ACQUIRES(alpha_lock) void LockAlpha();
SKYLOFT_RELEASES(alpha_lock) void UnlockAlpha();
SKYLOFT_ACQUIRES(beta_lock) void LockBeta();
SKYLOFT_RELEASES(beta_lock) void UnlockBeta();

void MoveEntry(int from, int to);

void TransferAB(int from, int to) {
  LockAlpha();
  LockBeta();
  MoveEntry(from, to);
  UnlockBeta();
  UnlockAlpha();
}

void TransferBA(int from, int to) {
  LockAlpha();
  LockBeta();
  MoveEntry(to, from);
  UnlockBeta();
  UnlockAlpha();
}
