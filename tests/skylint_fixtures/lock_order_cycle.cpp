// Lock-discipline fixture (bad variant): two lock classes acquired in
// opposite orders on two paths. Two uthreads interleaving TransferAB and
// TransferBA each hold one lock and spin on the other — classic AB/BA
// deadlock (skylint R6, lock-order-cycle). The single diagnostic carries the
// first witness site of BOTH edges, so the report names each acquisition
// order, not just the one it happened to land on.
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)

SKYLOFT_ACQUIRES(alpha_lock) void LockAlpha();
SKYLOFT_RELEASES(alpha_lock) void UnlockAlpha();
SKYLOFT_ACQUIRES(beta_lock) void LockBeta();
SKYLOFT_RELEASES(beta_lock) void UnlockBeta();

void MoveEntry(int from, int to);

void TransferAB(int from, int to) {
  LockAlpha();
  LockBeta();  // expect(lock-order-cycle): acquiring in opposite orders can deadlock
  MoveEntry(from, to);
  UnlockBeta();
  UnlockAlpha();
}

void TransferBA(int from, int to) {
  LockBeta();
  LockAlpha();
  MoveEntry(to, from);
  UnlockAlpha();
  UnlockBeta();
}
