// PR 2 regression (fixed variant): the handler only touches lock-free
// atomics and preallocated storage; placement new into an existing buffer
// does not allocate and is exempt. skylint reports nothing here.
#include <atomic>
#include <new>

#define SKYLOFT_SIGNAL_SAFE

struct Sample {
  long when;
};

std::atomic<long> g_ticks;
alignas(Sample) unsigned char g_sample_slot[sizeof(Sample)];
std::atomic<bool> g_sample_valid;

void RecordSample(long now);

SKYLOFT_SIGNAL_SAFE void PreemptSignalHandler(int signo) {
  (void)signo;
  RecordSample(g_ticks.fetch_add(1, std::memory_order_relaxed));
}

void RecordSample(long now) {
  new (g_sample_slot) Sample{now};  // placement new: no allocation
  g_sample_valid.store(true, std::memory_order_release);
}
