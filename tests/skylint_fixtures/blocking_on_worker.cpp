// Lock-discipline fixture (bad variant): blocking calls reachable from
// WorkerLoop (skylint R7, blocking-call-on-worker). A thread-blocking call on
// a worker stalls the pthread and with it every uthread scheduled there —
// the exact failure the runtime's park/unpark path exists to avoid.
//
// Three shapes:
//   - a raw fd syscall (read) with no WaitForReadable/WaitForWritable park
//     loop in the same body, so on a blocking fd it blocks the worker;
//   - a helper honestly annotated SKYLOFT_BLOCKING, called from worker code;
//   - an unconditionally blocking call (usleep) on the dispatch path.
#define SKYLOFT_BLOCKING

struct Conn {
  int fd;
};

long read(int fd, void* buf, unsigned long count);
int usleep(unsigned int usec);

SKYLOFT_BLOCKING void WaitForConfigReload();

void ServeRequest(Conn* conn) {
  char buf[64];
  read(conn->fd, buf, 64);  // expect(blocking-call-on-worker): fd call 'read'
}

void MaybeReloadConfig() {
  WaitForConfigReload();  // expect(blocking-call-on-worker): SKYLOFT_BLOCKING
}

void WorkerLoop(Conn* conn) {
  for (;;) {
    usleep(50);  // expect(blocking-call-on-worker): blocking call 'usleep'
    MaybeReloadConfig();
    ServeRequest(conn);
  }
}
