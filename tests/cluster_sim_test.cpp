// Tests for the partitioned cluster simulation: conservative window
// synchronization, cross-shard delivery through NodeLinks, and the edge
// cases of the epoch protocol (boundary arrivals, in-flight cancellation,
// stop propagation, zero-latency rejection).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/node_link.h"
#include "src/simcore/cluster_sim.h"
#include "src/simcore/simulation.h"

namespace skyloft {
namespace {

TEST(ClusterSimTest, SingleNodeDegeneratesToSimulation) {
  // A one-node cluster with no links behaves exactly like a standalone
  // Simulation advanced in kDefaultEpochNs windows.
  ClusterSim cluster(1);
  std::vector<TimeNs> fired;
  cluster.node(0)->ScheduleAt(Micros(10), [&] { fired.push_back(cluster.node(0)->Now()); });
  cluster.node(0)->ScheduleAt(Millis(3), [&] { fired.push_back(cluster.node(0)->Now()); });
  cluster.Run();
  EXPECT_EQ(fired, (std::vector<TimeNs>{Micros(10), Millis(3)}));
  EXPECT_EQ(cluster.TotalEventsExecuted(), 2u);
}

TEST(ClusterSimTest, CrossShardSendArrivesAfterLinkLatency) {
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(5));
  TimeNs arrival = -1;
  cluster.node(0)->ScheduleAt(Micros(2), [&] {
    link.Send([&] { arrival = cluster.node(1)->Now(); });
  });
  cluster.Run();
  EXPECT_EQ(arrival, Micros(7));
  EXPECT_EQ(link.sent(), 1u);
}

TEST(ClusterSimTest, LookaheadIsMinimumLinkLatency) {
  ClusterSim cluster(3);
  NodeLink a(&cluster, 0, 1, Micros(20));
  NodeLink b(&cluster, 1, 2, Micros(5));
  NodeLink c(&cluster, 2, 0, Micros(10));
  EXPECT_EQ(cluster.lookahead(), Micros(5));
}

TEST(ClusterSimTest, PingPongAcrossShards) {
  ClusterSim cluster(2);
  NodeLink forward(&cluster, 0, 1, Micros(3));
  NodeLink back(&cluster, 1, 0, Micros(3));
  std::vector<std::string> trace;
  int rounds = 0;
  // Mutual recursion through InplaceFunction-sized lambdas: each hop logs
  // (node, time) and bounces until 4 one-way hops happened.
  struct Pinger {
    ClusterSim* cluster;
    NodeLink* forward;
    NodeLink* back;
    std::vector<std::string>* trace;
    int* rounds;
    void Ping() {
      trace->push_back("n1@" + std::to_string(cluster->node(1)->Now()));
      if (++*rounds >= 2) {
        return;
      }
      back->Send([this] { Pong(); });
    }
    void Pong() {
      trace->push_back("n0@" + std::to_string(cluster->node(0)->Now()));
      forward->Send([this] { Ping(); });
    }
  };
  Pinger pinger{&cluster, &forward, &back, &trace, &rounds};
  cluster.node(0)->ScheduleAt(0, [&] { forward.Send([&pinger] { pinger.Ping(); }); });
  cluster.Run();
  EXPECT_EQ(trace, (std::vector<std::string>{
                       "n1@3000",  // 0 + 3us
                       "n0@6000",  // bounce back
                       "n1@9000",  // second round
                   }));
}

TEST(ClusterSimTest, EventExactlyOnEpochBoundaryFires) {
  // lookahead = 10us, so windows are [0,10us), [10us,20us), ... — an event at
  // exactly t = 10us belongs to the second window and must fire exactly once.
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(10));
  int fires = 0;
  cluster.node(0)->ScheduleAt(Micros(10), [&] { fires++; });
  cluster.Run();
  EXPECT_EQ(fires, 1);
}

TEST(ClusterSimTest, ArrivalExactlyOnEpochBoundaryFires) {
  // A send at t=0 over a lookahead-latency link arrives exactly at the first
  // epoch barrier (t = lookahead) — the earliest arrival the conservative
  // protocol permits. It must fire in the next window, not be lost.
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(10));
  TimeNs arrival = -1;
  cluster.node(0)->ScheduleAt(0, [&] {
    link.Send([&] { arrival = cluster.node(1)->Now(); });
  });
  cluster.Run();
  EXPECT_EQ(arrival, Micros(10));
}

TEST(ClusterSimTest, ArrivalExactlyOnRunUntilDeadlineFires) {
  // The deadline-grazing case: a send whose arrival lands exactly on the
  // RunUntil deadline is delivered at the final barrier and still fires
  // (the coordinator runs one extra inclusive window for it).
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(10));
  TimeNs arrival = -1;
  cluster.node(0)->ScheduleAt(Micros(10), [&] {
    link.Send([&] { arrival = cluster.node(1)->Now(); });
  });
  cluster.RunUntil(Micros(20));
  EXPECT_EQ(arrival, Micros(20));
  EXPECT_EQ(cluster.Now(), Micros(20));
}

TEST(ClusterSimTest, RunUntilAdvancesEveryNodeToDeadline) {
  ClusterSim cluster(3);
  NodeLink link(&cluster, 0, 1, Micros(7));
  cluster.node(2)->ScheduleAt(Micros(1), [] {});
  cluster.RunUntil(Micros(100));
  EXPECT_EQ(cluster.Now(), Micros(100));
  for (int i = 0; i < cluster.num_nodes(); i++) {
    EXPECT_EQ(cluster.node(i)->Now(), Micros(100)) << "node " << i;
  }
}

TEST(ClusterSimTest, ZeroLatencyLinkRejected) {
  ClusterSim cluster(2);
  EXPECT_DEATH(NodeLink(&cluster, 0, 1, 0), "lookahead");
}

TEST(ClusterSimTest, ZeroLatencySendRejected) {
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(5));
  EXPECT_DEATH(cluster.node(0)->SendRemote(1, 0, [] {}), "lookahead");
}

TEST(ClusterSimTest, EpochOverrideLargerThanLookaheadRejected) {
  ClusterSim::Options options;
  options.epoch_ns = Micros(20);
  ClusterSim cluster(2, options);
  NodeLink link(&cluster, 0, 1, Micros(5));
  EXPECT_DEATH(cluster.Run(), "lookahead");
}

TEST(ClusterSimTest, StandaloneDriversForbiddenOnClusterMembers) {
  ClusterSim cluster(2);
  EXPECT_DEATH(cluster.node(0)->Run(), "cluster members");
  EXPECT_DEATH(cluster.node(0)->RunUntil(Micros(1)), "cluster members");
  EXPECT_DEATH(cluster.node(0)->Step(), "cluster members");
}

TEST(ClusterSimTest, SendRemoteRequiresCluster) {
  Simulation sim;
  EXPECT_DEATH(sim.SendRemote(1, Micros(1), [] {}), "standalone");
}

TEST(ClusterSimTest, CancelInFlightCrossShardEvent) {
  // Cancel before the epoch barrier: the event is still in the sender's
  // outbox, so the cancel wins and the destination never sees it.
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(50));
  int fires = 0;
  cluster.node(0)->ScheduleAt(Micros(1), [&] {
    RemoteEventId id = link.Send([&] { fires++; });
    // Same node, same window, before the barrier: cancellable.
    cluster.node(0)->ScheduleAt(Micros(2), [&link, id] {
      EXPECT_TRUE(link.Cancel(id));
      EXPECT_FALSE(link.Cancel(id));  // double-cancel is a no-op
    });
  });
  cluster.Run();
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(cluster.node(0)->OutboxSize(), 0u);
}

TEST(ClusterSimTest, CancelAfterBarrierFails) {
  // Once the send crosses an epoch barrier the destination owns the event:
  // Cancel returns false and the event fires anyway.
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(10));
  int fires = 0;
  RemoteEventId id = kInvalidRemoteEventId;
  cluster.node(0)->ScheduleAt(0, [&] {
    id = link.Send([&] { fires++; });
  });
  // t = 15us is past the first barrier (t = 10us), so the send has been
  // delivered into node 1's wheel by the time this cancel runs.
  cluster.node(0)->ScheduleAt(Micros(15), [&] { EXPECT_FALSE(link.Cancel(id)); });
  cluster.Run();
  EXPECT_EQ(fires, 1);
}

TEST(ClusterSimTest, ShardStopHaltsWholeCluster) {
  // Node 1 stops at t = 12us (inside window [10us, 20us)). Every shard still
  // finishes that window, the coordinator observes the stop at the barrier,
  // and nothing from later windows runs on any shard.
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(10));
  bool later_event_ran = false;
  cluster.node(1)->ScheduleAt(Micros(12), [&] { cluster.node(1)->Stop(); });
  // Same window on the *other* shard, after the stopping event's timestamp:
  // still runs (shards are independent within a window).
  TimeNs peer_saw = -1;
  cluster.node(0)->ScheduleAt(Micros(19), [&] { peer_saw = cluster.node(0)->Now(); });
  cluster.node(0)->ScheduleAt(Micros(25), [&] { later_event_ran = true; });
  cluster.node(1)->ScheduleAt(Micros(25), [&] { later_event_ran = true; });
  cluster.Run();
  EXPECT_EQ(peer_saw, Micros(19));
  EXPECT_FALSE(later_event_ran);
  EXPECT_EQ(cluster.Now(), Micros(20));  // halted at the window's barrier
}

TEST(ClusterSimTest, ExternalStopHaltsAtNextBarrier) {
  ClusterSim cluster(2);
  NodeLink link(&cluster, 0, 1, Micros(10));
  // A periodic heartbeat would run forever; stop the cluster via the
  // external handle (any thread may call it). Unlike SimNode::Stop, the
  // external stop does not halt the in-progress window: the beat at t=20us
  // requests the stop, the beat at 25us still lands inside window
  // [20us, 30us), and the coordinator observes the flag at the 30us barrier.
  int beats = 0;
  cluster.node(0)->SchedulePeriodic(Micros(5), Micros(5), [&] {
    if (++beats == 4) {
      cluster.Stop();
    }
  });
  cluster.Run();
  EXPECT_EQ(beats, 5);
  EXPECT_EQ(cluster.Now(), Micros(30));
}

TEST(ClusterSimTest, ParallelRunMatchesSequentialTrace) {
  // The same 4-node scatter workload at 1 and 4 host threads must produce
  // identical per-node event counts and clocks. (The full trace-level
  // cross-check lives in simcore_determinism_test.)
  auto build_and_run = [](int threads) {
    ClusterSim::Options options;
    options.num_threads = threads;
    ClusterSim cluster(4, options);
    std::vector<std::unique_ptr<NodeLink>> links;
    for (int i = 0; i < 4; i++) {
      links.push_back(
          std::make_unique<NodeLink>(&cluster, i, (i + 1) % 4, Micros(2)));
    }
    for (int i = 0; i < 4; i++) {
      NodeLink* out = links[static_cast<std::size_t>(i)].get();
      cluster.node(i)->SchedulePeriodic(Micros(1) + i * 100, Micros(3), [out] {
        out->Send([] {});
      });
    }
    cluster.RunUntil(Millis(1));
    std::vector<std::uint64_t> counts;
    for (int i = 0; i < 4; i++) {
      counts.push_back(cluster.node(i)->EventsExecuted());
    }
    return counts;
  };
  EXPECT_EQ(build_and_run(1), build_and_run(4));
}

TEST(ClusterSimTest, NodeIdsAndOutboxAccounting) {
  ClusterSim cluster(3);
  NodeLink link(&cluster, 2, 0, Micros(4));
  EXPECT_EQ(cluster.node(0)->node_id(), 0);
  EXPECT_EQ(cluster.node(2)->node_id(), 2);
  EXPECT_EQ(link.src(), 2);
  EXPECT_EQ(link.dst(), 0);
  EXPECT_EQ(link.latency(), Micros(4));
  cluster.node(2)->ScheduleAt(Micros(1), [&] {
    link.Send([] {});
    link.Send([] {});
    EXPECT_EQ(cluster.node(2)->OutboxSize(), 2u);
  });
  cluster.Run();
  EXPECT_EQ(cluster.node(2)->OutboxSize(), 0u);
  EXPECT_EQ(cluster.TotalEventsExecuted(), 3u);  // 1 local + 2 remote
}

}  // namespace
}  // namespace skyloft
