// Tests for the scheduling tracer and its engine integration.
#include <gtest/gtest.h>

#include <memory>

#include "src/libos/percpu_engine.h"
#include "src/libos/trace.h"
#include "src/policies/round_robin.h"

namespace skyloft {
namespace {

TEST(TracerTest, RecordsInOrder) {
  SchedTracer tracer(16);
  tracer.Record(10, TraceEventType::kAssign, 0, 1, 0);
  tracer.Record(20, TraceEventType::kPreempt, 0, 1, 0);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].when, 10);
  EXPECT_EQ(events[1].type, TraceEventType::kPreempt);
  EXPECT_EQ(tracer.total_recorded(), 2u);
}

TEST(TracerTest, RingOverwritesOldest) {
  SchedTracer tracer(4);
  for (int i = 0; i < 10; i++) {
    tracer.Record(i, TraceEventType::kAssign, 0, static_cast<std::uint64_t>(i), 0);
  }
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().when, 6);
  EXPECT_EQ(events.back().when, 9);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(TracerTest, JsonIsWellFormedIsh) {
  SchedTracer tracer(8);
  tracer.Record(1000, TraceEventType::kAppSwitch, 2, 7, 1);
  const std::string json = tracer.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"app_switch\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"task\":7"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  SchedTracer tracer(4);
  tracer.Record(1, TraceEventType::kAssign, 0, 1, 0);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

struct Rig {
  Rig() {
    MachineConfig mcfg;
    mcfg.num_cores = 1;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

TEST(TracerTest, EngineEmitsLifecycleEvents) {
  Rig rig;
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.timer_hz = 100'000;
  cfg.tick_path = TickPath::kUserTimer;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app_a = engine.CreateApp("a");
  App* app_b = engine.CreateApp("b");
  engine.Start();
  SchedTracer tracer;
  engine.SetTracer(&tracer);

  // Two CPU hogs from different apps on one core: expect assigns, preempts
  // (RR slices), and app switches.
  engine.Submit(engine.NewTask(app_a, Millis(1)));
  engine.Submit(engine.NewTask(app_b, Millis(1)));
  rig.sim.RunUntil(Millis(5));

  EXPECT_GT(tracer.CountOf(TraceEventType::kAssign), 10u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kPreempt), 10u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kAppSwitch), 10u);
  EXPECT_EQ(tracer.CountOf(TraceEventType::kSegmentEnd), 2u);

  // Trace timestamps must be monotonically non-decreasing.
  const auto events = tracer.Snapshot();
  for (std::size_t i = 1; i < events.size(); i++) {
    EXPECT_LE(events[i - 1].when, events[i].when);
  }
}

TEST(TracerTest, FaultEventsTraced) {
  Rig rig;
  RoundRobinPolicy policy(kInfiniteSlice);
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.tick_path = TickPath::kNone;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("a");
  engine.Start();
  SchedTracer tracer;
  engine.SetTracer(&tracer);
  engine.Submit(engine.NewTask(app, Millis(1)));
  rig.sim.ScheduleAt(Micros(100), [&] { engine.InjectPageFault(0, Micros(200)); });
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(tracer.CountOf(TraceEventType::kFault), 1u);
  EXPECT_EQ(tracer.CountOf(TraceEventType::kFaultDone), 1u);
}

}  // namespace
}  // namespace skyloft
