// Tests for the cross-layer scheduling tracer: ring semantics, chrome-trace
// JSON emission (golden strings), sim-engine integration, and host-runtime
// integration (including the preemption signal path).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <memory>
#include <string>

#include "src/simcore/simulation.h"
#include "src/base/trace.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/round_robin.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

TEST(TracerTest, RecordsInOrder) {
  SchedTracer tracer(16);
  tracer.Record(10, TraceEventType::kAssign, 0, 1, 0);
  tracer.Record(20, TraceEventType::kPreempt, 0, 1, 0);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].when, 10);
  EXPECT_EQ(events[1].type, TraceEventType::kPreempt);
  EXPECT_EQ(tracer.total_recorded(), 2u);
}

TEST(TracerTest, RingOverwritesOldest) {
  SchedTracer tracer(4);
  for (int i = 0; i < 10; i++) {
    tracer.Record(i, TraceEventType::kAssign, 0, static_cast<std::uint64_t>(i), 0);
  }
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().when, 6);
  EXPECT_EQ(events.back().when, 9);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(TracerTest, WrapAroundAccounting) {
  // Retained window vs lifetime count: 6 events through a 4-slot ring.
  SchedTracer tracer(4);
  for (int i = 0; i < 6; i++) {
    tracer.Record(i, i % 2 == 0 ? TraceEventType::kAssign : TraceEventType::kPreempt, 0,
                  static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(tracer.total_recorded(), 6u);
  EXPECT_EQ(tracer.size(), 4u);
  // CountOf covers only the retained window: events 2..5 (two of each type).
  EXPECT_EQ(tracer.CountOf(TraceEventType::kAssign), 2u);
  EXPECT_EQ(tracer.CountOf(TraceEventType::kPreempt), 2u);
  // Snapshot is oldest-retained-first across the wrap seam.
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].when, static_cast<TimeNs>(i + 2));
  }
}

TEST(TracerTest, ClearResets) {
  SchedTracer tracer(4);
  tracer.Record(1, TraceEventType::kAssign, 0, 1, 0);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

// ---- JSON emission (golden strings) ----

TEST(TracerJsonTest, InstantGoldenString) {
  // Instants must carry the mandatory "s" scope and fractional-µs "ts" —
  // chrome://tracing drops scopeless instants and integer-µs timestamps
  // collapse sub-µs events onto each other.
  TraceEvent event;
  event.when = 1500;  // 1.5 µs
  event.type = TraceEventType::kAssign;
  event.worker = 2;
  event.task_id = 7;
  event.app_id = 1;
  char buf[256];
  EXPECT_STREQ(TraceEventToJson(event, buf, sizeof(buf)),
               "{\"name\":\"assign\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.500,"
               "\"pid\":1,\"tid\":2,\"args\":{\"task\":7}}");
}

TEST(TracerJsonTest, SubMicrosecondTimestampIsNotTruncated) {
  // Regression: ts was previously when/1000 in integer arithmetic, so a
  // 999 ns event serialized as ts:0 — indistinguishable from time zero.
  TraceEvent event;
  event.when = 999;
  event.type = TraceEventType::kFault;
  event.worker = 0;
  event.task_id = 1;
  event.app_id = 0;
  char buf[256];
  const std::string json = TraceEventToJson(event, buf, sizeof(buf));
  EXPECT_NE(json.find("\"ts\":0.999"), std::string::npos) << json;
}

TEST(TracerJsonTest, SpanGoldenString) {
  TraceEvent event;
  event.when = 2000;
  event.dur = 500;
  event.type = TraceEventType::kRun;
  event.worker = 0;
  event.task_id = 42;
  event.app_id = 3;
  char buf[256];
  EXPECT_STREQ(TraceEventToJson(event, buf, sizeof(buf)),
               "{\"name\":\"run\",\"ph\":\"X\",\"ts\":2.000,\"dur\":0.500,"
               "\"pid\":3,\"tid\":0,\"args\":{\"task\":42}}");
}

TEST(TracerJsonTest, RingWrapGoldenString) {
  // After overflow, ToJson must emit only the retained window, oldest first.
  SchedTracer tracer(2);
  tracer.Record(1000, TraceEventType::kAssign, 0, 1, 0);
  tracer.Record(2000, TraceEventType::kAssign, 0, 2, 0);
  tracer.Record(3000, TraceEventType::kAssign, 0, 3, 0);
  EXPECT_EQ(tracer.ToJson(),
            "[{\"name\":\"assign\",\"ph\":\"i\",\"s\":\"t\",\"ts\":2.000,"
            "\"pid\":0,\"tid\":0,\"args\":{\"task\":2}},"
            "{\"name\":\"assign\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3.000,"
            "\"pid\":0,\"tid\":0,\"args\":{\"task\":3}}]");
}

TEST(TracerTest, JsonIsWellFormedIsh) {
  SchedTracer tracer(8);
  tracer.Record(1000, TraceEventType::kAppSwitch, 2, 7, 1);
  const std::string json = tracer.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"app_switch\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"task\":7"), std::string::npos);
}

// ---- Sim-engine integration ----

struct Rig {
  Rig() {
    MachineConfig mcfg;
    mcfg.num_cores = 1;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

TEST(TracerTest, EngineEmitsLifecycleEvents) {
  Rig rig;
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.timer_hz = 100'000;
  cfg.tick_path = TickPath::kUserTimer;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app_a = engine.CreateApp("a");
  App* app_b = engine.CreateApp("b");
  engine.Start();
  SchedTracer tracer;
  engine.SetTracer(&tracer);

  // Two CPU hogs from different apps on one core: expect assigns, preempts
  // (RR slices), app switches, and occupancy spans.
  engine.Submit(engine.NewTask(app_a, Millis(1)));
  engine.Submit(engine.NewTask(app_b, Millis(1)));
  rig.sim.RunUntil(Millis(5));

  EXPECT_GT(tracer.CountOf(TraceEventType::kAssign), 10u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kPreempt), 10u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kAppSwitch), 10u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kRun), 10u);
  EXPECT_EQ(tracer.CountOf(TraceEventType::kSegmentEnd), 2u);

  // Instant timestamps must be monotonically non-decreasing. Spans are
  // excluded: a kRun span is recorded when the segment ENDS but carries the
  // segment's start time, so it legitimately sorts before nearby instants.
  const auto events = tracer.Snapshot();
  TimeNs last_instant = 0;
  for (const TraceEvent& event : events) {
    if (event.dur >= 0) {
      EXPECT_GE(event.dur, 0);
      continue;
    }
    EXPECT_LE(last_instant, event.when);
    last_instant = event.when;
  }
}

TEST(TracerTest, FaultEventsTraced) {
  Rig rig;
  RoundRobinPolicy policy(kInfiniteSlice);
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.tick_path = TickPath::kNone;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("a");
  engine.Start();
  SchedTracer tracer;
  engine.SetTracer(&tracer);
  engine.Submit(engine.NewTask(app, Millis(1)));
  rig.sim.ScheduleAt(Micros(100), [&] { engine.InjectPageFault(0, Micros(200)); });
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(tracer.CountOf(TraceEventType::kFault), 1u);
  EXPECT_EQ(tracer.CountOf(TraceEventType::kFaultDone), 1u);
  // The stall also shows up as one duration span covering the fault latency.
  EXPECT_EQ(tracer.CountOf(TraceEventType::kFaultStall), 1u);
  for (const TraceEvent& event : tracer.Snapshot()) {
    if (event.type == TraceEventType::kFaultStall) {
      EXPECT_EQ(event.dur, Micros(200));
    }
  }
}

// ---- Host-runtime integration ----

TEST(TracerHostTest, RuntimeEmitsAssignRunAndSignalEvents) {
  SchedTracer tracer(1 << 14);
  RuntimeOptions opts{.workers = 1, .preempt_period_us = 2000};
  opts.tracer = &tracer;
  Runtime rt(opts);
  std::atomic<bool> hog_running{true};
  rt.Run([&] {
    UThread* hog = Runtime::Spawn([&] {
      volatile std::uint64_t x = 0;
      while (hog_running.load(std::memory_order_relaxed)) {
        x = x + 1;
      }
    });
    UThread* other = Runtime::Spawn([&] { hog_running.store(false); });
    Runtime::Join(other);
    Runtime::Join(hog);
  });
  // Run() joined all workers, so reads are quiesced. The hog can only have
  // been broken by a preemption, which implies the full signal-path chain:
  // an accepted signal instant, a preempt instant, and occupancy spans.
  EXPECT_GT(rt.preemptions(), 0u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kAssign), 0u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kRun), 0u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kPreempt), 0u);
  EXPECT_GT(tracer.CountOf(TraceEventType::kSignal), 0u);
  for (const TraceEvent& event : tracer.Snapshot()) {
    if (event.type == TraceEventType::kRun) {
      EXPECT_GE(event.dur, 0);
    }
  }
}

// ---- Cross-substrate trace document ----

// Minimal recursive-descent JSON validator: enough of RFC 8259 to prove the
// emitted document parses (objects, arrays, strings, numbers, literals).
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text)
      : p_(text.c_str()), end_(p_ + text.size()) {}
  bool Validate() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return p_ == end_;
  }

 private:
  bool Value() {
    SkipWs();
    if (p_ == end_) {
      return false;
    }
    switch (*p_) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++p_;
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (p_ == end_ || *p_ != ':') {
        return false;
      }
      ++p_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (p_ == end_) {
        return false;
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++p_;
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (p_ == end_) {
        return false;
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (p_ == end_ || *p_ != '"') {
      return false;
    }
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) {
          return false;
        }
      }
      ++p_;
    }
    if (p_ == end_) {
      return false;
    }
    ++p_;
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') {
      ++p_;
    }
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) != 0 || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    return p_ != start;
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }
  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  const char* p_;
  const char* end_;
};

TEST(TracerCrossSubstrateTest, CombinedTraceIsValidChromeJson) {
  // Sim slice: RR engine with two competing apps emits spans and instants.
  SchedTracer sim_tracer;
  {
    Rig rig;
    RoundRobinPolicy policy(Micros(50));
    PerCpuEngineConfig cfg;
    cfg.base.worker_cores = {0};
    cfg.timer_hz = 100'000;
    cfg.tick_path = TickPath::kUserTimer;
    PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
    App* app_a = engine.CreateApp("a");
    App* app_b = engine.CreateApp("b");
    engine.Start();
    engine.SetTracer(&sim_tracer);
    engine.Submit(engine.NewTask(app_a, Millis(1)));
    engine.Submit(engine.NewTask(app_b, Millis(1)));
    rig.sim.RunUntil(Millis(3));
  }
  // Host slice: preemptible runtime with the same tracer type.
  SchedTracer host_tracer(1 << 14);
  {
    RuntimeOptions opts{.workers = 1, .preempt_period_us = 2000};
    opts.tracer = &host_tracer;
    Runtime rt(opts);
    std::atomic<bool> hog_running{true};
    rt.Run([&] {
      UThread* hog = Runtime::Spawn([&] {
        volatile std::uint64_t x = 0;
        while (hog_running.load(std::memory_order_relaxed)) {
          x = x + 1;
        }
      });
      UThread* other = Runtime::Spawn([&] { hog_running.store(false); });
      Runtime::Join(other);
      Runtime::Join(hog);
    });
  }

  const std::string sim_json = sim_tracer.ToJson();
  const std::string host_json = host_tracer.ToJson();
  // Duration events must come from BOTH substrates.
  EXPECT_NE(sim_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(host_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_TRUE(JsonValidator(sim_json).Validate());
  EXPECT_TRUE(JsonValidator(host_json).Validate());

  // Splice both arrays into one combined trace document, as trace_demo does.
  ASSERT_GT(sim_json.size(), 2u);
  ASSERT_GT(host_json.size(), 2u);
  const std::string combined = "[" + sim_json.substr(1, sim_json.size() - 2) + "," +
                               host_json.substr(1, host_json.size() - 2) + "]";
  EXPECT_TRUE(JsonValidator(combined).Validate());
}

}  // namespace
}  // namespace skyloft
