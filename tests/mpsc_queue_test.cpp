// MpscQueue: the intrusive mailbox absorbing all submissions into a worker's
// lock-free runqueue. The single-thread tests pin the reverse-arrival drain
// contract the scheduler's FIFO argument depends on; the stress test drives
// many producers against a concurrently-draining consumer and checks
// exact-once delivery plus per-producer order — meant to run under the TSan
// and ASan CI jobs.
#include "src/base/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace skyloft {
namespace {

struct Msg : MpscNode {
  int producer = 0;
  int seq = 0;
};

TEST(MpscQueueTest, DrainReturnsReverseArrivalOrder) {
  MpscQueue<Msg> queue;
  EXPECT_TRUE(queue.EmptyApprox());
  EXPECT_EQ(queue.DrainReversed(), nullptr);

  Msg msgs[3];
  for (int i = 0; i < 3; i++) {
    msgs[i].seq = i;
    EXPECT_EQ(queue.Push(&msgs[i]), 0) << "uncontended push must not retry";
  }
  EXPECT_FALSE(queue.EmptyApprox());

  Msg* chain = queue.DrainReversed();
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(queue.EmptyApprox());
  // Newest first: 2, 1, 0.
  for (int expected = 2; expected >= 0; expected--) {
    ASSERT_NE(chain, nullptr);
    EXPECT_EQ(chain->seq, expected);
    chain = MpscQueue<Msg>::Next(chain);
  }
  EXPECT_EQ(chain, nullptr);
}

TEST(MpscQueueTest, NodesAreReusableAfterDrain) {
  MpscQueue<Msg> queue;
  Msg msg;
  for (int round = 0; round < 100; round++) {
    msg.seq = round;
    queue.Push(&msg);
    Msg* chain = queue.DrainReversed();
    ASSERT_EQ(chain, &msg);
    EXPECT_EQ(MpscQueue<Msg>::Next(chain), nullptr);
  }
}

// Producers hammer Push while the consumer drains concurrently: every message
// must arrive exactly once, and each producer's messages must appear in its
// push order once the reversed chains are stitched back together.
TEST(MpscQueueStressTest, ProducersVsDrainingConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<Msg> queue;
  std::vector<std::vector<Msg>> msgs(kProducers);
  for (int p = 0; p < kProducers; p++) {
    msgs[p].resize(kPerProducer);
    for (int i = 0; i < kPerProducer; i++) {
      msgs[p][i].producer = p;
      msgs[p][i].seq = i;
    }
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&queue, &msgs, p] {
      for (int i = 0; i < kPerProducer; i++) {
        queue.Push(&msgs[p][i]);
        if ((i & 63) == 63) {
          std::this_thread::yield();  // let the consumer interleave on 1 core
        }
      }
    });
  }

  // Consumer: drain until everything arrived. Each drained chain is reversed
  // back to arrival order before checking per-producer sequence.
  int received = 0;
  int next_seq[kProducers] = {};
  std::vector<Msg*> batch;
  while (received < kProducers * kPerProducer) {
    Msg* chain = queue.DrainReversed();
    if (chain == nullptr) {
      std::this_thread::yield();
      continue;
    }
    batch.clear();
    for (Msg* m = chain; m != nullptr; m = MpscQueue<Msg>::Next(m)) {
      batch.push_back(m);
    }
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      Msg* m = *it;
      ASSERT_EQ(m->seq, next_seq[m->producer])
          << "producer " << m->producer << " order broken (lost or duplicated)";
      next_seq[m->producer]++;
      received++;
    }
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_TRUE(queue.EmptyApprox());
  for (int p = 0; p < kProducers; p++) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

}  // namespace
}  // namespace skyloft
