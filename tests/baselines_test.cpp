// Tests for the baseline-system factories: each modelled system must exhibit
// the configuration effects its model claims (kernel wake costs, parking
// penalties, dispatcher weight), since the figure benchmarks build on them.
#include <gtest/gtest.h>

#include "src/baselines/systems.h"

namespace skyloft {
namespace {

TEST(BaselineFactoryTest, AllFactoriesConstructAndRun) {
  // Smoke: every factory yields a runnable system that completes one task.
  std::vector<SystemSetup> setups;
  setups.push_back(MakeSkyloftPerCpu(SkyloftSched::kRr, 2));
  setups.push_back(MakeSkyloftPerCpu(SkyloftSched::kCfs, 2));
  setups.push_back(MakeSkyloftPerCpu(SkyloftSched::kEevdf, 2));
  setups.push_back(MakeSkyloftPerCpu(SkyloftSched::kFifo, 2));
  setups.push_back(MakeLinuxPerCpu(LinuxSched::kRrDefault, 2));
  setups.push_back(MakeLinuxPerCpu(LinuxSched::kCfsDefault, 2));
  setups.push_back(MakeLinuxPerCpu(LinuxSched::kCfsTuned, 2));
  setups.push_back(MakeLinuxPerCpu(LinuxSched::kEevdfDefault, 2));
  setups.push_back(MakeLinuxPerCpu(LinuxSched::kEevdfTuned, 2));
  setups.push_back(MakeSkyloftShinjuku(2, Micros(30), false));
  setups.push_back(MakeSkyloftShinjuku(2, Micros(30), true));
  setups.push_back(MakeShinjukuOriginal(2, Micros(30)));
  setups.push_back(MakeGhost(2, Micros(30), false));
  setups.push_back(MakeLinuxCfsCentralWorkload(2));
  setups.push_back(MakeSkyloftWorkStealing(2, Micros(5)));
  setups.push_back(MakeSkyloftWorkStealing(2, Micros(5), /*utimer=*/true));
  setups.push_back(MakeShenango(2));
  for (SystemSetup& setup : setups) {
    setup.engine->Submit(setup.engine->NewTask(setup.app, Micros(10)));
    setup.sim->RunUntil(Millis(2));
    EXPECT_EQ(setup.engine->stats().completed, 1u) << setup.name;
    setup.kernel->CheckBindingRule();
  }
}

TEST(BaselineFactoryTest, LinuxWakeupPathIsCostly) {
  // The same block/wake sequence costs ~2.5 us on Linux (kernel wake +
  // switch) vs ~0.1 us on Skyloft.
  auto measure = [](SystemSetup setup) {
    Task* task = setup.engine->NewTask(setup.app, Micros(5));
    task->on_segment_end = [](Task*) { return SegmentAction::kBlock; };
    setup.engine->Submit(task);
    setup.sim->RunUntil(Micros(100));
    setup.sim->ScheduleAt(Micros(200), [&] { setup.engine->WakeTask(task, Micros(5)); });
    setup.sim->RunUntil(Millis(1));
    return setup.engine->stats().wakeup_latency.Max();
  };
  const auto skyloft = measure(MakeSkyloftPerCpu(SkyloftSched::kCfs, 2));
  const auto linux = measure(MakeLinuxPerCpu(LinuxSched::kCfsTuned, 2));
  EXPECT_LT(skyloft, 500);
  EXPECT_GT(linux, 2000);
}

TEST(BaselineFactoryTest, ShenangoPaysUnparkAfterIdle) {
  // A request arriving at a long-idle Shenango worker pays the kernel
  // unpark; a Skyloft spinning worker does not.
  auto measure = [](SystemSetup setup) {
    // Let the worker sit idle well past any park threshold.
    setup.sim->RunUntil(Millis(1));
    setup.engine->Submit(setup.engine->NewTask(setup.app, Micros(5)));
    setup.sim->RunUntil(Millis(2));
    return setup.engine->stats().request_latency.Max();
  };
  const auto skyloft = measure(MakeSkyloftWorkStealing(2, kInfiniteSliceWs));
  const auto shenango = measure(MakeShenango(2));
  EXPECT_GT(shenango, skyloft + 1500) << "unpark cost must appear";
}

TEST(BaselineFactoryTest, GhostDispatchHeavierThanSkyloft) {
  auto measure = [](SystemSetup setup) {
    setup.engine->Submit(setup.engine->NewTask(setup.app, Micros(4)));
    setup.sim->RunUntil(Millis(1));
    return setup.engine->stats().request_latency.Max();
  };
  const auto skyloft = measure(MakeSkyloftShinjuku(2, Micros(30), false));
  const auto ghost = measure(MakeGhost(2, Micros(30), false));
  EXPECT_GT(ghost, skyloft + 2000) << "kernel-transaction dispatch must show up";
}

TEST(BaselineFactoryTest, SkyloftTimerHzMatchesTable5) {
  SystemSetup setup = MakeSkyloftPerCpu(SkyloftSched::kCfs, 2);
  EXPECT_EQ(setup.chip->timer(0).hz(), 100'000);
  SystemSetup linux_setup = MakeLinuxPerCpu(LinuxSched::kCfsDefault, 2);
  EXPECT_EQ(linux_setup.chip->timer(0).hz(), 250);
  SystemSetup tuned = MakeLinuxPerCpu(LinuxSched::kCfsTuned, 2);
  EXPECT_EQ(tuned.chip->timer(0).hz(), 1000);
}

TEST(BaselineFactoryTest, UtimerVariantUsesExtraCore) {
  SystemSetup with_utimer = MakeSkyloftWorkStealing(4, Micros(5), /*utimer=*/true);
  EXPECT_EQ(with_utimer.machine->num_cores(), 5);
  EXPECT_EQ(with_utimer.engine->NumWorkers(), 4);
  SystemSetup local = MakeSkyloftWorkStealing(4, Micros(5));
  EXPECT_EQ(local.machine->num_cores(), 4);
}

}  // namespace
}  // namespace skyloft
