// Tests for the UINTR architectural model, including the paper's key §3.2
// behaviours: SENDUIPI posting, SN suppression, hardware-timer delegation
// (and its failure without the PIR-priming trick), delivery gating on
// UIF/user mode, and the LAPIC timer.
#include <gtest/gtest.h>

#include <deque>
#include <utility>
#include <vector>

#include "src/simcore/machine.h"
#include "src/simcore/simulation.h"
#include "src/uintr/uintr_chip.h"

namespace skyloft {
namespace {

class UintrTest : public ::testing::Test {
 protected:
  UintrTest() : machine_(&sim_, MakeConfig()), chip_(&machine_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.num_cores = 48;
    config.cores_per_socket = 24;
    return config;
  }

  // Configures core `recv` to receive user IPIs into `frames`.
  Upid* SetupReceiver(CoreId recv, std::vector<UintrFrame>* frames) {
    auto* upid = &upids_.emplace_back();
    upid->nv = kUserIpiVector;
    upid->ndst = recv;
    UserInterruptUnit& unit = chip_.unit(recv);
    unit.SetUinv(kUserIpiVector);
    unit.SetActiveUpid(upid);
    unit.SetHandler([frames](const UintrFrame& frame) { frames->push_back(frame); });
    return upid;
  }

  Simulation sim_;
  Machine machine_;
  UintrChip chip_;
  std::deque<Upid> upids_;
};

TEST_F(UintrTest, SendUipiDeliversToHandler) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  const int idx = chip_.RegisterUittEntry(0, upid, 5);

  const DurationNs send_cost = chip_.SendUipi(0, idx);
  EXPECT_EQ(send_cost, machine_.costs().UserIpiSendNs());
  EXPECT_TRUE(upid->pir.Test(5));
  EXPECT_TRUE(frames.empty()) << "delivery takes wire time";

  sim_.Run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].vector, 5);
  EXPECT_FALSE(frames[0].from_timer);
  EXPECT_EQ(frames[0].sender, 0);
  EXPECT_EQ(frames[0].receive_cost_ns, machine_.costs().UserIpiReceiveNs());
  EXPECT_TRUE(upid->pir.None()) << "recognition drains the PIR";
}

TEST_F(UintrTest, DeliveryLatencyMatchesTable6) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  TimeNs handler_at = -1;
  chip_.unit(1).SetHandler([&](const UintrFrame&) { handler_at = sim_.Now(); });
  const TimeNs sent_at = sim_.Now();
  chip_.SendUipi(0, idx);
  sim_.Run();
  EXPECT_EQ(handler_at - sent_at, machine_.costs().UserIpiDeliveryNs());
}

TEST_F(UintrTest, CrossNumaDeliveryIsSlower) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(30, &frames);  // other socket
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  TimeNs handler_at = -1;
  chip_.unit(30).SetHandler([&](const UintrFrame&) { handler_at = sim_.Now(); });
  chip_.SendUipi(0, idx);
  sim_.Run();
  EXPECT_EQ(handler_at, machine_.costs().UserIpiDeliveryNs(true));
  EXPECT_GT(handler_at, machine_.costs().UserIpiDeliveryNs(false));
}

TEST_F(UintrTest, SnBitSuppressesIpiButPostsPir) {
  // The heart of the Skyloft timer trick: SENDUIPI with UPID.SN=1 updates
  // the PIR without generating an IPI.
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  upid->sn = true;
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  chip_.SendUipi(0, idx);
  sim_.Run();
  EXPECT_TRUE(frames.empty()) << "SN must suppress the notification IPI";
  EXPECT_TRUE(upid->pir.Test(5)) << "but the PIR must still be posted";
}

TEST_F(UintrTest, OutstandingNotificationCoalesces) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  chip_.SendUipi(0, idx);
  chip_.SendUipi(0, idx);  // ON set: no second IPI
  sim_.Run();
  EXPECT_EQ(frames.size(), 1u) << "hardware coalesces while ON is set";
}

TEST_F(UintrTest, MultipleVectorsDeliveredHighestFirst) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  upid->sn = true;  // post without IPIs, then trigger once
  const int idx3 = chip_.RegisterUittEntry(0, upid, 3);
  const int idx9 = chip_.RegisterUittEntry(0, upid, 9);
  chip_.SendUipi(0, idx3);
  chip_.SendUipi(0, idx9);
  upid->sn = false;
  const int idx5 = chip_.RegisterUittEntry(0, upid, 5);
  chip_.SendUipi(0, idx5);
  sim_.Run();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].vector, 9);
  EXPECT_EQ(frames[1].vector, 5);
  EXPECT_EQ(frames[2].vector, 3);
}

TEST_F(UintrTest, UifClearHoldsDelivery) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  chip_.unit(1).SetUif(false);
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  chip_.SendUipi(0, idx);
  sim_.Run();
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(chip_.unit(1).uirr().Test(5)) << "recognized but pending";
  chip_.unit(1).SetUif(true);
  EXPECT_EQ(frames.size(), 1u) << "delivered as soon as UIF is set";
}

TEST_F(UintrTest, KernelModeHoldsDelivery) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  chip_.unit(1).SetUserMode(false);
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  chip_.SendUipi(0, idx);
  sim_.Run();
  EXPECT_TRUE(frames.empty());
  chip_.unit(1).SetUserMode(true);
  EXPECT_EQ(frames.size(), 1u);
}

TEST_F(UintrTest, VectorMismatchTakesLegacyPath) {
  std::vector<UintrFrame> frames;
  SetupReceiver(1, &frames);
  std::vector<std::pair<CoreId, int>> legacy;
  chip_.SetLegacyHandler([&](CoreId core, int vector) { legacy.emplace_back(core, vector); });
  chip_.RaiseHardwareInterrupt(1, 0x99);
  EXPECT_TRUE(frames.empty());
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_EQ(legacy[0].first, 1);
  EXPECT_EQ(legacy[0].second, 0x99);
}

// The paper's central discovery (§3.2): matching UINV alone is NOT enough
// for hardware interrupts — the timer does not write the PIR, so recognition
// finds it empty and nothing is delivered.
TEST_F(UintrTest, TimerWithEmptyPirIsLost) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  upid->nv = kApicTimerVector;
  chip_.unit(1).SetUinv(kApicTimerVector);  // step 1 only
  chip_.RaiseHardwareInterrupt(1, kApicTimerVector);
  EXPECT_TRUE(frames.empty()) << "no PIR priming => no user delivery";
  EXPECT_TRUE(upid->pir.None());
}

TEST_F(UintrTest, TimerWithPrimedPirDeliversInUserSpace) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  upid->nv = kApicTimerVector;
  upid->sn = true;  // self-IPIs must not generate real IPIs
  chip_.unit(1).SetUinv(kApicTimerVector);
  // Step 2: self-SENDUIPI primes the PIR.
  const int self_idx = chip_.RegisterUittEntry(1, upid, 1);
  chip_.SendUipi(1, self_idx);
  // Now a hardware timer interrupt is recognized AND delivered in user space.
  chip_.RaiseHardwareInterrupt(1, kApicTimerVector);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].from_timer);
  EXPECT_EQ(frames[0].receive_cost_ns, machine_.costs().UserTimerReceiveNs());
}

TEST_F(UintrTest, TimerDeliveryRequiresReArmEachTime) {
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  upid->nv = kApicTimerVector;
  upid->sn = true;
  chip_.unit(1).SetUinv(kApicTimerVector);
  const int self_idx = chip_.RegisterUittEntry(1, upid, 1);
  chip_.SendUipi(1, self_idx);

  chip_.RaiseHardwareInterrupt(1, kApicTimerVector);
  EXPECT_EQ(frames.size(), 1u);
  // Without re-arming, the next timer interrupt is lost (PIR drained).
  chip_.RaiseHardwareInterrupt(1, kApicTimerVector);
  EXPECT_EQ(frames.size(), 1u);
  // Re-arm (Listing 1's senduipi in the handler) and it flows again.
  chip_.SendUipi(1, self_idx);
  chip_.RaiseHardwareInterrupt(1, kApicTimerVector);
  EXPECT_EQ(frames.size(), 2u);
}

TEST_F(UintrTest, IpiToStaleUpidFallsBackToLegacy) {
  // If the receiving thread was switched out (active UPID changed), the
  // notification IPI takes the kernel path.
  std::vector<UintrFrame> frames;
  Upid* upid = SetupReceiver(1, &frames);
  const int idx = chip_.RegisterUittEntry(0, upid, 5);
  chip_.SendUipi(0, idx);
  Upid other;
  chip_.unit(1).SetActiveUpid(&other);  // thread switched while IPI in flight
  int legacy_count = 0;
  chip_.SetLegacyHandler([&](CoreId, int) { legacy_count++; });
  sim_.Run();
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(legacy_count, 1);
}

// ---- LAPIC timer ----

TEST_F(UintrTest, ApicTimerFiresPeriodically) {
  std::vector<TimeNs> fires;
  chip_.SetLegacyHandler([&](CoreId core, int vector) {
    if (vector == kApicTimerVector) {
      fires.push_back(sim_.Now());
    }
  });
  chip_.timer(2).SetHz(100'000);  // 10 us period
  chip_.timer(2).Enable();
  sim_.RunUntil(Micros(100));
  ASSERT_EQ(fires.size(), 10u);
  for (std::size_t i = 0; i < fires.size(); i++) {
    EXPECT_EQ(fires[i], static_cast<TimeNs>(Micros(10) * (i + 1)));
  }
}

TEST_F(UintrTest, ApicTimerDisableStopsFiring) {
  int fires = 0;
  chip_.SetLegacyHandler([&](CoreId, int) { fires++; });
  chip_.timer(2).SetHz(100'000);
  chip_.timer(2).Enable();
  sim_.RunUntil(Micros(35));
  EXPECT_EQ(fires, 3);
  chip_.timer(2).Disable();
  sim_.RunUntil(Micros(100));
  EXPECT_EQ(fires, 3);
}

TEST_F(UintrTest, ApicTimerSetHzReprograms) {
  std::vector<TimeNs> fires;
  chip_.SetLegacyHandler([&](CoreId, int) { fires.push_back(sim_.Now()); });
  chip_.timer(2).SetHz(100'000);
  chip_.timer(2).Enable();
  sim_.RunUntil(Micros(20));
  chip_.timer(2).SetHz(1'000'000);  // 1 us period from now on
  sim_.RunUntil(Micros(25));
  // Fires at 10, 20, then 21..25.
  ASSERT_EQ(fires.size(), 7u);
  EXPECT_EQ(fires[2], Micros(21));
}

TEST_F(UintrTest, ApicTimerSetHzMidFlightTakesEffectNextPeriodOnce) {
  // Reprogramming in the middle of a period (not at a fire boundary) must
  // restart the period exactly once: the next fire is one *new* period after
  // the SetHz call, and every later fire follows at the new period — no
  // double fire from the old pending deadline, no skipped period.
  std::vector<TimeNs> fires;
  chip_.SetLegacyHandler([&](CoreId, int) { fires.push_back(sim_.Now()); });
  chip_.timer(2).SetHz(100'000);  // 10 us period
  chip_.timer(2).Enable();
  sim_.RunUntil(Micros(25));  // fires at 10, 20; next old deadline would be 30
  ASSERT_EQ(fires.size(), 2u);
  chip_.timer(2).SetHz(250'000);  // 4 us period, reprogrammed at t = 25 us
  sim_.RunUntil(Micros(42));
  // 25 + 4 = 29, then 33, 37, 41. The old 30 us deadline must not fire.
  ASSERT_EQ(fires.size(), 6u);
  EXPECT_EQ(fires[2], Micros(29));
  EXPECT_EQ(fires[3], Micros(33));
  EXPECT_EQ(fires[4], Micros(37));
  EXPECT_EQ(fires[5], Micros(41));
}

TEST_F(UintrTest, ApicTimerPeriodicNodeReuse) {
  // The periodic fast path keeps one event id alive across fires: the
  // simulator's pending-event count stays flat while the timer runs.
  chip_.SetLegacyHandler([&](CoreId, int) {});
  chip_.timer(2).SetHz(1'000'000);
  chip_.timer(2).Enable();
  const std::size_t pending_at_start = sim_.PendingEvents();
  sim_.RunUntil(Micros(50));
  EXPECT_EQ(sim_.PendingEvents(), pending_at_start);
  chip_.timer(2).Disable();
  EXPECT_EQ(sim_.PendingEvents(), pending_at_start - 1);
}

TEST_F(UintrTest, SendUipiOutOfRangeIndexAborts) {
  EXPECT_DEATH(chip_.SendUipi(0, 42), "out-of-range UITT index");
}

}  // namespace
}  // namespace skyloft
