// Engine-level tests: task lifecycle, overhead charging, user-space timer
// preemption, multi-application switching (Single Binding Rule costs), the
// centralized dispatcher with quantum preemption, and the Shenango-style
// core allocator.
#include <gtest/gtest.h>

#include <memory>

#include "src/simcore/simulation.h"
#include "src/libos/central_engine.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/round_robin.h"
#include "src/policies/shinjuku.h"
#include "src/policies/work_stealing.h"

namespace skyloft {
namespace {

struct SimRig {
  explicit SimRig(int num_cores) {
    MachineConfig mcfg;
    mcfg.num_cores = num_cores;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

PerCpuEngineConfig PerCpuCfg(int cores, std::int64_t hz = 100'000,
                             TickPath path = TickPath::kUserTimer) {
  PerCpuEngineConfig cfg;
  for (int i = 0; i < cores; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.base.local_switch_ns = 100;
  cfg.timer_hz = hz;
  cfg.tick_path = path;
  return cfg;
}

TEST(PerCpuEngineTest, SingleTaskRunsToCompletion) {
  SimRig rig(1);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(1));
  App* app = engine.CreateApp("a");
  engine.Start();
  Task* task = engine.NewTask(app, Micros(10));
  engine.Submit(task);
  rig.sim.RunUntil(Millis(1));
  EXPECT_EQ(engine.stats().completed, 1u);
  // Latency = switch cost + service (+ any tick overhead landing inside).
  const auto p100 = engine.stats().request_latency.Max();
  EXPECT_GE(p100, Micros(10));
  EXPECT_LT(p100, Micros(12));
}

TEST(PerCpuEngineTest, FifoOrderOnOneCore) {
  SimRig rig(1);
  RoundRobinPolicy policy(kInfiniteSlice);
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(1));
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.Submit(engine.NewTask(app, Micros(10), /*kind=*/0));
  engine.Submit(engine.NewTask(app, Micros(10), /*kind=*/1));
  rig.sim.RunUntil(Millis(1));
  EXPECT_EQ(engine.stats().completed, 2u);
  // Second task waits for the first: latency roughly doubles.
  EXPECT_LT(engine.stats().latency_by_kind[0].Max(), Micros(12));
  EXPECT_GT(engine.stats().latency_by_kind[1].Max(), Micros(19));
}

TEST(PerCpuEngineTest, WorkConservationAcrossCores) {
  SimRig rig(4);
  WorkStealingPolicy policy(WorkStealingParams{kInfiniteSliceWs, 1});
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(4, 100'000, TickPath::kNone));
  App* app = engine.CreateApp("a");
  engine.Start();
  for (int i = 0; i < 4; i++) {
    engine.Submit(engine.NewTask(app, Micros(100)), /*worker_hint=*/0);
  }
  rig.sim.RunUntil(Micros(150));
  // All four must have run in parallel (idle cores pull work on submit).
  EXPECT_EQ(engine.stats().completed, 4u);
}

TEST(PerCpuEngineTest, TimerPreemptionBreaksHeadOfLine) {
  // One core, FIFO vs RR: a long task ahead of a short one. With a 50 us RR
  // slice the short task finishes ~at slice boundary; with FIFO it waits the
  // full 10 ms.
  auto run = [](DurationNs slice) {
    SimRig rig(1);
    RoundRobinPolicy policy(slice);
    PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                        PerCpuCfg(1));
    App* app = engine.CreateApp("a");
    engine.Start();
    engine.Submit(engine.NewTask(app, Millis(10), /*kind=*/1));
    engine.Submit(engine.NewTask(app, Micros(4), /*kind=*/0));
    rig.sim.RunUntil(Millis(50));
    return engine.stats().latency_by_kind[0].Max();
  };
  const auto rr_latency = run(Micros(50));
  const auto fifo_latency = run(kInfiniteSlice);
  EXPECT_GT(fifo_latency, Millis(9));
  EXPECT_LT(rr_latency, Micros(200));
}

TEST(PerCpuEngineTest, TickCountMatchesFrequency) {
  SimRig rig(2);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(2, 100'000));
  engine.CreateApp("a");
  engine.Start();
  rig.sim.RunUntil(Millis(10));
  // 100 kHz x 10 ms x 2 cores = 2000 ticks.
  EXPECT_EQ(engine.ticks(), 2000u);
}

TEST(PerCpuEngineTest, KernelTickPathAlsoPreempts) {
  SimRig rig(1);
  RoundRobinPolicy policy(Millis(1));
  auto cfg = PerCpuCfg(1, 1000, TickPath::kKernelTimer);
  cfg.base.local_switch_ns = 1124;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(20), /*kind=*/1));
  engine.Submit(engine.NewTask(app, Micros(4), /*kind=*/0));
  rig.sim.RunUntil(Millis(100));
  EXPECT_EQ(engine.stats().completed, 2u);
  // Preemption happens at kernel-tick granularity: ~1-2 ms, not 10 us.
  const auto short_latency = engine.stats().latency_by_kind[0].Max();
  EXPECT_GT(short_latency, Micros(900));
  EXPECT_LT(short_latency, Millis(4));
}

TEST(PerCpuEngineTest, WakeupLatencyRecorded) {
  SimRig rig(1);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(1));
  App* app = engine.CreateApp("a");
  engine.Start();
  Task* task = engine.NewTask(app, Micros(5));
  task->on_segment_end = [](Task*) { return SegmentAction::kBlock; };
  engine.Submit(task);
  rig.sim.ScheduleAt(Micros(100), [&] { engine.WakeTask(task, Micros(5)); });
  rig.sim.RunUntil(Millis(1));
  EXPECT_EQ(engine.stats().wakeup_latency.Count(), 1u);
  // Idle core: wakeup latency is just the switch cost.
  EXPECT_LT(engine.stats().wakeup_latency.Max(), Micros(1));
}

TEST(PerCpuEngineTest, InterAppSwitchCostsShowUp) {
  // Two apps alternating on one core: each assignment pays the 1905 ns
  // kernel-module switch, visible in completion times.
  SimRig rig(1);
  RoundRobinPolicy policy(kInfiniteSlice);
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(1, 100'000, TickPath::kNone));
  App* app_a = engine.CreateApp("a");
  App* app_b = engine.CreateApp("b");
  engine.Start();
  engine.Submit(engine.NewTask(app_a, Micros(10), 0));
  engine.Submit(engine.NewTask(app_b, Micros(10), 1));
  engine.Submit(engine.NewTask(app_a, Micros(10), 2));
  rig.sim.RunUntil(Millis(1));
  EXPECT_EQ(engine.stats().completed, 3u);
  // Task 3 saw two app switches (a->b, b->a) on top of ~30 us of service.
  const auto total = engine.stats().latency_by_kind[2].Max();
  const auto switch_cost = rig.machine->costs().skyloft_app_switch_ns;
  EXPECT_GE(total, Micros(30) + 2 * switch_cost);
  rig.kernel->CheckBindingRule();
}

TEST(PerCpuEngineTest, CpuShareAccounting) {
  SimRig rig(2);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      PerCpuCfg(2));
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.ResetStats();
  // One core fully busy for ~1 ms, the other idle: share ~= 0.5.
  engine.Submit(engine.NewTask(app, Millis(1)), 0);
  rig.sim.RunUntil(Millis(1));
  const double share = engine.CpuShare(app);
  EXPECT_NEAR(share, 0.5, 0.05);
}

TEST(PerCpuEngineTest, DeterministicAcrossRuns) {
  auto run = [] {
    SimRig rig(4);
    WorkStealingPolicy policy(WorkStealingParams{Micros(5), 7});
    PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                        PerCpuCfg(4, 200'000));
    App* app = engine.CreateApp("a");
    engine.Start();
    Rng rng(99);
    for (int i = 0; i < 500; i++) {
      rig.sim.ScheduleAt(static_cast<TimeNs>(rng.NextBelow(Millis(5))), [&engine, app, &rng, i] {
        engine.Submit(engine.NewTask(app, 500 + static_cast<DurationNs>(i) * 13, i % 2));
      });
    }
    rig.sim.RunUntil(Millis(20));
    return std::make_tuple(engine.stats().completed, engine.stats().request_latency.Max(),
                           engine.stats().request_latency.Percentile(0.5),
                           rig.sim.EventsExecuted());
  };
  EXPECT_EQ(run(), run());
}

// ---- Centralized engine ----

CentralizedEngineConfig CentralCfg(int workers, DurationNs quantum) {
  CentralizedEngineConfig cfg;
  for (int i = 0; i < workers; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.dispatcher_core = workers;
  cfg.quantum = quantum;
  cfg.base.local_switch_ns = 100;
  return cfg;
}

TEST(CentralizedEngineTest, DispatchesToIdleWorkers) {
  SimRig rig(3);
  ShinjukuPolicy policy;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                           CentralCfg(2, Micros(30)));
  App* app = engine.CreateApp("lc");
  engine.Start();
  engine.Submit(engine.NewTask(app, Micros(50)));
  engine.Submit(engine.NewTask(app, Micros(50)));
  rig.sim.RunUntil(Micros(80));
  EXPECT_EQ(engine.stats().completed, 2u) << "both workers must run in parallel";
}

TEST(CentralizedEngineTest, QuantumPreemptionApproximatesProcessorSharing) {
  // 1 worker; a 10 ms hog arrives, then a 4 us request. With a 30 us quantum
  // the short request completes in ~tens of us; without preemption it waits
  // 10 ms.
  auto run = [&](DurationNs quantum,
                 CentralizedEngineConfig::Mech mech) -> std::int64_t {
    SimRig rig(2);
    ShinjukuPolicy policy;
    auto cfg = CentralCfg(1, quantum);
    cfg.mech = mech;
    CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
    App* app = engine.CreateApp("lc");
    engine.Start();
    engine.Submit(engine.NewTask(app, Millis(10), 1));
    rig.sim.ScheduleAt(Micros(10), [&] { engine.Submit(engine.NewTask(app, Micros(4), 0)); });
    rig.sim.RunUntil(Millis(50));
    return engine.stats().latency_by_kind[0].Max();
  };
  const auto preemptive = run(Micros(30), CentralizedEngineConfig::Mech::kUserIpi);
  const auto fifo = run(0, CentralizedEngineConfig::Mech::kNone);
  EXPECT_LT(preemptive, Micros(100));
  EXPECT_GT(fifo, Millis(9));
}

TEST(CentralizedEngineTest, PreemptsAreCounted) {
  SimRig rig(2);
  ShinjukuPolicy policy;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                           CentralCfg(1, Micros(30)));
  App* app = engine.CreateApp("lc");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(1), 1));
  engine.Submit(engine.NewTask(app, Millis(1), 1));
  rig.sim.RunUntil(Millis(5));
  EXPECT_GT(engine.preempts_sent(), 10u);  // 2 ms of work / 30 us quanta, ~2x
}

TEST(CentralizedEngineTest, NoPreemptionWhenQueueEmpty) {
  SimRig rig(2);
  ShinjukuPolicy policy;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                           CentralCfg(1, Micros(30)));
  App* app = engine.CreateApp("lc");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(1), 1));
  rig.sim.RunUntil(Millis(5));
  EXPECT_EQ(engine.preempts_sent(), 0u) << "run-to-completion when nothing waits";
  EXPECT_EQ(engine.stats().completed, 1u);
}

TEST(CentralizedEngineTest, BestEffortGetsIdleCores) {
  SimRig rig(3);
  ShinjukuPolicy policy;
  auto cfg = CentralCfg(2, Micros(30));
  cfg.core_alloc = true;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  engine.CreateApp("lc");
  App* be = engine.CreateApp("batch", /*best_effort=*/true);
  engine.AttachBestEffortApp(be);
  engine.Start();
  engine.ResetStats();
  rig.sim.RunUntil(Millis(10));
  // LC idle: the allocator grants all but min_lc_workers to the batch app.
  EXPECT_EQ(engine.BestEffortWorkers(), 1);
  EXPECT_GT(engine.CpuShare(be), 0.4);
}

TEST(CentralizedEngineTest, BestEffortNeverRunsWithoutCoreAlloc) {
  // Shinjuku's dedicated-core model: zero CPU share for the batch app
  // (Fig. 7c's flat-zero line).
  SimRig rig(3);
  ShinjukuPolicy policy;
  auto cfg = CentralCfg(2, Micros(30));
  cfg.core_alloc = false;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  engine.CreateApp("lc");
  App* be = engine.CreateApp("batch", true);
  engine.AttachBestEffortApp(be);
  engine.Start();
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(engine.BestEffortWorkers(), 0);
  EXPECT_DOUBLE_EQ(engine.CpuShare(be), 0.0);
}

TEST(CentralizedEngineTest, CongestionReclaimsBestEffortCores) {
  SimRig rig(3);
  ShinjukuPolicy policy;
  auto cfg = CentralCfg(2, Micros(30));
  cfg.core_alloc = true;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* lc = engine.CreateApp("lc");
  App* be = engine.CreateApp("batch", true);
  engine.AttachBestEffortApp(be);
  engine.Start();
  rig.sim.RunUntil(Millis(5));  // batch takes the idle core
  ASSERT_EQ(engine.BestEffortWorkers(), 1);
  // Burst of LC work: the allocator must take the core back quickly.
  rig.sim.ScheduleAfter(0, [&] {
    for (int i = 0; i < 8; i++) {
      engine.Submit(engine.NewTask(lc, Micros(200)));
    }
  });
  rig.sim.RunUntil(Millis(5) + Micros(50));
  EXPECT_EQ(engine.BestEffortWorkers(), 0) << "congestion must reclaim the BE core";
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(engine.stats().completed, 8u);
  rig.kernel->CheckBindingRule();
}

}  // namespace
}  // namespace skyloft
