// Tests for the per-worker I/O engine cores (src/runtime/io_engine) and the
// WaitForReadable/WaitForWritable park/unpark primitives, over real loopback
// sockets and pipes:
//   - park/unpark racing concurrent readiness (edge-triggered latch contract)
//   - accept-batch overflow resupplying readiness via RelatchReadable
//   - peer reset (SO_LINGER 0 -> RST) landing mid-write
//   - peer hangup delivered while handler uthreads migrate across workers
//   - Interrupt() waking a parked waiter for shutdown
//   - Deregister with write interest still outstanding, then a late POLLOUT
//     (the io_uring stale-oneshot-CQE lifetime regression)
// Runs under TSan/ASan in CI; every cross-thread handoff here is a real
// data-race candidate.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/metrics.h"
#include "src/runtime/io_engine.h"
#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

struct TcpPair {
  int client = -1;  // blocking, plain OS-thread end
  int server = -1;  // registered with an engine by the test
};

// Establishes a loopback TCP pair with ordinary blocking sockets (runs on
// the test's main thread, before/outside the runtime).
TcpPair MakeTcpPair() {
  TcpPair pair;
  const int lfd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(listen(lfd, 8), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  pair.client = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(pair.client, 0);
  EXPECT_EQ(connect(pair.client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  pair.server = accept(lfd, nullptr, nullptr);
  EXPECT_GE(pair.server, 0);
  close(lfd);
  return pair;
}

// Runtime-aware join: spin on SleepFor so the worker keeps polling engines
// (std::thread::join on a uthread would block the worker pthread).
SKYLOFT_MAY_SWITCH void AwaitFlag(const std::atomic<bool>& flag) {
  while (!flag.load(std::memory_order_acquire)) {
    Runtime::SleepFor(500);
  }
}

TEST(IoEngineTest, RegisterSetsNonblockingAndDeregisterCloses) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  TcpPair pair = MakeTcpPair();
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server);
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(handle->fd, pair.server);
    EXPECT_NE(fcntl(pair.server, F_GETFL) & O_NONBLOCK, 0);
    engine->Deregister(handle);
    // Deregister owns the close; by the next engine poll the fd is retired.
    // The close is immediate even though the handle free is deferred.
    EXPECT_EQ(fcntl(pair.server, F_GETFD), -1);
    EXPECT_EQ(errno, EBADF);
  });
  close(pair.client);
}

TEST(IoEngineTest, ParkUnparkUnderConcurrentReadiness) {
  constexpr std::size_t kTotal = 256 * 1024;
  Runtime rt(RuntimeOptions{.workers = 2, .io_engine = true});
  TcpPair pair = MakeTcpPair();

  std::atomic<bool> reader_done{false};
  std::size_t received = 0;
  bool saw_eof = false;

  // Writer races readiness edges against the reader's park decisions: bursts
  // of varying sizes with occasional pauses, so some WaitForReadable calls
  // find the latch already set (fast path) and some must park.
  std::thread writer([&] {
    std::vector<char> chunk(4096, 'x');
    std::size_t sent = 0;
    unsigned rng = 12345;
    while (sent < kTotal) {
      rng = rng * 1664525u + 1013904223u;
      const std::size_t n = std::min(chunk.size() - (rng % 1024), kTotal - sent);
      ssize_t wrote = write(pair.client, chunk.data(), n);
      ASSERT_GT(wrote, 0);
      sent += static_cast<std::size_t>(wrote);
      if (rng % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng % 300));
      }
    }
    close(pair.client);  // clean FIN: reader must observe EOF after the bytes
  });

  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server);
    ASSERT_NE(handle, nullptr);
    Runtime::Spawn([&, handle] {
      char buf[2048];
      while (true) {
        WaitForReadable(handle);
        bool eof = false;
        while (true) {
          const ssize_t n = read(handle->fd, buf, sizeof(buf));
          if (n > 0) {
            received += static_cast<std::size_t>(n);
            continue;
          }
          if (n == 0) {
            eof = true;
          }
          break;  // EAGAIN: drained; re-park for the next edge
        }
        if (eof) {
          saw_eof = true;
          break;
        }
      }
      engine->Deregister(handle);
      reader_done.store(true, std::memory_order_release);
    });
    AwaitFlag(reader_done);
  });
  writer.join();
  EXPECT_EQ(received, kTotal);
  EXPECT_TRUE(saw_eof);
}

TEST(IoEngineTest, AcceptBatchOverflowRelatchesReadiness) {
  constexpr int kClients = 24;
  constexpr int kBatch = 4;  // far smaller than the backlog burst
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});

  const int lfd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, kClients + 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  // All clients connect before the acceptor runs: one readiness edge must
  // carry the whole backlog across multiple capped batches.
  std::vector<int> clients;
  for (int i = 0; i < kClients; i++) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    clients.push_back(fd);
  }

  int accepted = 0;
  int relatches = 0;
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(lfd);
    ASSERT_NE(handle, nullptr);
    while (accepted < kClients) {
      const unsigned ready = WaitForReadable(handle);
      ASSERT_EQ(ready & kIoError, 0u);
      int batch = 0;
      while (batch < kBatch) {
        const int fd = accept4(handle->fd, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
          break;
        }
        close(fd);
        accepted++;
        batch++;
      }
      if (batch == kBatch) {
        // Batch cap hit with backlog left: restore the consumed edge or the
        // next WaitForReadable would sleep until a brand-new connection.
        IoEngine::RelatchReadable(handle);
        relatches++;
      }
    }
    engine->Deregister(handle);
  });
  EXPECT_EQ(accepted, kClients);
  EXPECT_GE(relatches, kClients / kBatch - 1);
  for (const int fd : clients) {
    close(fd);
  }
}

TEST(IoEngineTest, PeerResetMidWrite) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  TcpPair pair = MakeTcpPair();
  // Shrink both directions so the writer hits EAGAIN (and parks) quickly.
  const int small = 8 * 1024;
  setsockopt(pair.server, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(pair.client, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  std::atomic<bool> writer_parked_once{false};
  std::atomic<bool> done{false};
  bool observed_reset = false;

  std::thread client([&] {
    // Let the server fill the pipe and park in WaitForWritable, then abort
    // the connection: SO_LINGER(0) close sends RST, not FIN.
    while (!writer_parked_once.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    linger lin{.l_onoff = 1, .l_linger = 0};
    setsockopt(pair.client, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
    close(pair.client);
  });

  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server);
    ASSERT_NE(handle, nullptr);
    Runtime::Spawn([&, handle] {
      const std::vector<char> chunk(64 * 1024, 'y');
      for (int i = 0; i < 4096 && !observed_reset; i++) {
        std::size_t off = 0;
        while (off < chunk.size()) {
          const ssize_t n = write(handle->fd, chunk.data() + off, chunk.size() - off);
          if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            writer_parked_once.store(true, std::memory_order_release);
            const unsigned ready = WaitForWritable(handle);
            if ((ready & (kIoError | kIoHup)) != 0) {
              observed_reset = true;  // RST surfaced through the engine
              break;
            }
            continue;
          }
          // RST surfaced through the write itself.
          EXPECT_TRUE(errno == ECONNRESET || errno == EPIPE) << std::strerror(errno);
          observed_reset = true;
          break;
        }
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  client.join();
  EXPECT_TRUE(observed_reset);
}

TEST(IoEngineTest, HupDeliveredWhileHandlersMigrate) {
  // Handlers are registered with worker 0's engine but run (and migrate)
  // wherever stealing takes them; the engine's Unpark must chase them across
  // workers. EPOLLHUP/RDHUP from the peer close is the wakeup under test.
  constexpr int kConns = 8;
  Runtime rt(RuntimeOptions{.workers = 2, .io_engine = true});
  std::vector<TcpPair> pairs;
  for (int i = 0; i < kConns; i++) {
    pairs.push_back(MakeTcpPair());
  }

  std::atomic<bool> all_done{false};
  std::atomic<int> eof_count{0};
  std::atomic<bool> close_now{false};

  std::thread closer([&] {
    while (!close_now.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (TcpPair& pair : pairs) {
      write(pair.client, "z", 1);  // one byte, then hangup
      close(pair.client);
    }
  });

  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    std::atomic<int> live{kConns};
    for (int i = 0; i < kConns; i++) {
      IoHandle* handle = engine->Register(pairs[static_cast<std::size_t>(i)].server);
      ASSERT_NE(handle, nullptr);
      Runtime::Spawn([&, handle] {
        char buf[64];
        bool eof = false;
        while (!eof) {
          WaitForReadable(handle);
          Runtime::Yield();  // invite migration between wakeup and drain
          while (true) {
            const ssize_t n = read(handle->fd, buf, sizeof(buf));
            if (n > 0) {
              continue;
            }
            if (n == 0) {
              eof = true;
            }
            break;
          }
        }
        engine->Deregister(handle);
        eof_count.fetch_add(1, std::memory_order_acq_rel);
        if (live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          all_done.store(true, std::memory_order_release);
        }
      });
    }
    // Churn uthreads keep both workers busy so the work stealer actually
    // migrates handlers instead of leaving them on their wakeup worker.
    for (int i = 0; i < 4; i++) {
      Runtime::Spawn([&] {
        while (!all_done.load(std::memory_order_acquire)) {
          Runtime::Yield();
        }
      });
    }
    close_now.store(true, std::memory_order_release);
    AwaitFlag(all_done);
  });
  closer.join();
  EXPECT_EQ(eof_count.load(), kConns);
}

TEST(IoEngineTest, InterruptWakesParkedWaiter) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  TcpPair pair = MakeTcpPair();  // no traffic: the waiter can only be interrupted
  std::atomic<bool> done{false};
  unsigned observed = 0;
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server);
    ASSERT_NE(handle, nullptr);
    Runtime::Spawn([&, handle] {
      observed = WaitForReadable(handle);
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    Runtime::SleepFor(20'000);  // give the waiter time to park
    IoEngine::Interrupt(handle);
    AwaitFlag(done);
  });
  EXPECT_NE(observed & kIoError, 0u);
  close(pair.client);
}

TEST(IoEngineTest, InterruptedWriterDeregisterThenPeerDrain) {
  // Regression for the io_uring lifetime bug: a writer parked in
  // WaitForWritable (oneshot POLLOUT pending in the ring) is woken by
  // Interrupt — no write CQE is consumed — and deregisters its handle.
  // io_uring holds a file reference per pending poll, so the close alone
  // does not complete it; when the peer later drains the socket the POLLOUT
  // completes, and it must land on a cancelled poll, never a freed handle
  // (pre-fix this is a heap-use-after-free under ASan on the uring build).
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  TcpPair pair = MakeTcpPair();
  const int small = 8 * 1024;
  setsockopt(pair.server, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(pair.client, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  std::atomic<bool> blocked{false};
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server);
    ASSERT_NE(handle, nullptr);
    Runtime::Spawn([&, handle] {
      const std::vector<char> chunk(64 * 1024, 'w');
      unsigned ready = 0;
      while ((ready & (kIoError | kIoHup)) == 0) {
        const ssize_t n = write(handle->fd, chunk.data(), chunk.size());
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          blocked.store(true, std::memory_order_release);
          ready = WaitForWritable(handle);
          continue;
        }
        if (n < 0) {
          break;
        }
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(blocked);
    Runtime::SleepFor(20'000);  // let the writer park with the poll pending
    IoEngine::Interrupt(handle);
    AwaitFlag(done);
    // Now drain the peer side: the send buffer empties and the kernel
    // reports writability against whatever interest survived Deregister.
    const int fl = fcntl(pair.client, F_GETFL, 0);
    ASSERT_EQ(fcntl(pair.client, F_SETFL, fl | O_NONBLOCK), 0);
    char buf[4096];
    while (read(pair.client, buf, sizeof(buf)) > 0) {
    }
    // Keep the engine polling long enough to reap any stale completion.
    Runtime::SleepFor(50'000);
  });
  close(pair.client);
}

TEST(IoEngineTest, PipeReadinessWorks) {
  // The engines accept any pollable fd, not just sockets; the kv bench
  // parks on a pipe from its forked client process exactly like this.
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);

  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const char msg[] = "ping";
    ASSERT_EQ(write(pipefd[1], msg, sizeof(msg)), static_cast<ssize_t>(sizeof(msg)));
    close(pipefd[1]);
  });

  std::string got;
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pipefd[0]);
    ASSERT_NE(handle, nullptr);
    Runtime::Spawn([&, handle] {
      char buf[64];
      while (true) {
        WaitForReadable(handle);
        const ssize_t n = read(handle->fd, buf, sizeof(buf));
        if (n > 0) {
          got.assign(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          break;
        }
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  writer.join();
  EXPECT_EQ(got, std::string("ping\0", 5));
}

// ---------------------------------------------------------------------------
// Completion data path (multishot RECV/ACCEPT, provided buffer rings, async
// sends). Every test gates on IoEngine::completion() — the runtime probe —
// and skips on epoll builds, pre-6.0 kernels, or completion=false, where the
// same registrations silently degrade to the readiness path tested above.
// ---------------------------------------------------------------------------

// Reads a runtime io counter by unqualified name from the global registry
// (-1 when absent, e.g. a standalone engine with no stats wired).
std::int64_t IoCounterValue(const char* name) {
  const std::string suffix = std::string(".") + name;
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    if (s.name.size() >= suffix.size() &&
        s.name.compare(s.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return static_cast<std::int64_t>(s.value);
    }
  }
  return -1;
}

// Pops and recycles every queued segment, appending payload bytes to `sink`.
std::size_t DrainRecvInto(IoEngine* engine, IoHandle* handle, std::string* sink) {
  std::size_t total = 0;
  IoRecvSlice slice;
  while (engine->PopRecv(handle, &slice)) {
    if (sink != nullptr) {
      sink->append(slice.data, slice.len);
    }
    total += slice.len;
    engine->RecycleBuffer(slice.buf_id);
  }
  return total;
}

std::string PatternBytes(std::size_t n, unsigned seed) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; i++) {
    seed = seed * 1664525u + 1013904223u;
    s[i] = static_cast<char>('a' + (seed >> 24) % 26);
  }
  return s;
}

TEST(IoEngineTest, CompletionStreamEchoRoundTrip) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  TcpPair pair = MakeTcpPair();
  const std::string msg = PatternBytes(512, 7);
  std::thread client([&] {
    ASSERT_EQ(write(pair.client, msg.data(), msg.size()), static_cast<ssize_t>(msg.size()));
    std::string back;
    char buf[1024];
    while (back.size() < msg.size()) {
      const ssize_t n = read(pair.client, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      back.append(buf, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(back, msg);
    close(pair.client);
  });
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server, IoRegisterMode::kStream);
    ASSERT_NE(handle, nullptr);
    ASSERT_NE(handle->cs, nullptr) << "expected the completion path, got readiness";
    Runtime::Spawn([&, handle] {
      std::string got;
      while (true) {
        const unsigned ready = WaitForReadable(handle);
        DrainRecvInto(engine, handle, &got);
        if (got.size() >= msg.size() || (ready & (kIoHup | kIoError)) != 0) {
          break;
        }
      }
      EXPECT_EQ(got, msg);
      EXPECT_GT(engine->SendEnqueue(handle, got), 0u);
      // Flush before teardown: wait for the final send CQE's drain latch.
      while (engine->SendQueuedBytes(handle) > 0) {
        const unsigned w = WaitForWritable(handle);
        ASSERT_EQ(w & kIoError, 0u);
        if ((w & kIoWritable) == 0) {
          Runtime::Yield();
        }
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  client.join();
}

TEST(IoEngineTest, CompletionShortSendContinuation) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  TcpPair pair = MakeTcpPair();
  // Tiny send buffer + a slow reader: the async SEND must complete short and
  // the CQE handler must re-arm the remainder (repeatedly) until drained.
  const int sndbuf = 4096;
  ASSERT_EQ(setsockopt(pair.server, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)), 0);
  constexpr std::size_t kPayload = 1 << 20;
  const std::string payload = PatternBytes(kPayload, 99);
  std::thread client([&] {
    std::string back;
    char buf[16 * 1024];
    while (back.size() < kPayload) {
      const ssize_t n = read(pair.client, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      back.append(buf, static_cast<std::size_t>(n));
      if ((back.size() % (128 * 1024)) < sizeof(buf)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    EXPECT_EQ(back, payload);
    close(pair.client);
  });
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server, IoRegisterMode::kStream);
    ASSERT_NE(handle, nullptr);
    ASSERT_NE(handle->cs, nullptr);
    Runtime::Spawn([&, handle] {
      ASSERT_GT(engine->SendEnqueue(handle, payload), 0u);
      while (engine->SendQueuedBytes(handle) > 0) {
        const unsigned w = WaitForWritable(handle);
        ASSERT_EQ(w & kIoError, 0u);
        if ((w & kIoWritable) == 0) {
          Runtime::Yield();
        }
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  client.join();
}

TEST(IoEngineTest, CompletionBufferRingExhaustionRearms) {
  // An 8-slot x 256-byte provided ring against a 64 KiB flood: the multishot
  // recv MUST hit -ENOBUFS, park on the stall list, and re-arm as the
  // consumer recycles — all bytes still arrive, in order.
  RuntimeOptions ropts{.workers = 1, .io_engine = true};
  ropts.io.buf_ring_entries = 8;
  ropts.io.buf_size = 256;
  Runtime rt(ropts);
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  const std::int64_t exhaustions_before = IoCounterValue("buf_exhaustions");
  TcpPair pair = MakeTcpPair();
  constexpr std::size_t kTotal = 64 * 1024;
  const std::string payload = PatternBytes(kTotal, 3);
  std::thread client([&] {
    std::size_t sent = 0;
    while (sent < kTotal) {
      const ssize_t n = write(pair.client, payload.data() + sent, kTotal - sent);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
    close(pair.client);
  });
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server, IoRegisterMode::kStream);
    ASSERT_NE(handle, nullptr);
    ASSERT_NE(handle->cs, nullptr);
    Runtime::Spawn([&, handle] {
      // Let the flood drain the 2 KiB ring dry before consuming anything.
      Runtime::SleepFor(50'000);
      std::string got;
      while (got.size() < kTotal) {
        const unsigned ready = WaitForReadable(handle);
        ASSERT_EQ(ready & kIoError, 0u);
        DrainRecvInto(engine, handle, &got);
      }
      EXPECT_EQ(got, payload);
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
    EXPECT_GT(IoCounterValue("buf_exhaustions"), exhaustions_before);
  });
  client.join();
}

TEST(IoEngineTest, CompletionEchoUnderStealChurn) {
  // Multi-worker echo: handler uthreads migrate via work stealing while
  // their fds' completions keep landing on the HOME engine, so PopRecv/
  // RecycleBuffer/SendEnqueue all cross workers. TSan is the real assertion.
  Runtime rt(RuntimeOptions{.workers = 2, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  constexpr int kConns = 4;
  constexpr int kRounds = 200;
  TcpPair pairs[kConns];
  for (TcpPair& pair : pairs) {
    pair = MakeTcpPair();
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kConns; c++) {
    clients.emplace_back([&, c] {
      unsigned rng = 1000u + static_cast<unsigned>(c);
      char buf[1024];
      for (int r = 0; r < kRounds; r++) {
        rng = rng * 1664525u + 1013904223u;
        const std::size_t n = 1 + rng % 600;
        const std::string msg = PatternBytes(n, rng);
        ASSERT_EQ(write(pairs[c].client, msg.data(), n), static_cast<ssize_t>(n));
        std::string back;
        while (back.size() < n) {
          const ssize_t m = read(pairs[c].client, buf, sizeof(buf));
          ASSERT_GT(m, 0);
          back.append(buf, static_cast<std::size_t>(m));
        }
        ASSERT_EQ(back, msg);
      }
      close(pairs[c].client);
    });
  }
  std::atomic<int> finished{0};
  rt.Run([&] {
    for (int c = 0; c < kConns; c++) {
      IoEngine* engine = rt.io_engine(c % 2);
      IoHandle* handle = engine->Register(pairs[c].server, IoRegisterMode::kStream);
      ASSERT_NE(handle, nullptr);
      ASSERT_NE(handle->cs, nullptr);
      Runtime::Spawn([&, engine, handle] {
        while (true) {
          const unsigned ready = WaitForReadable(handle);
          std::string chunk;
          DrainRecvInto(engine, handle, &chunk);
          if (!chunk.empty()) {
            ASSERT_GT(engine->SendEnqueue(handle, std::move(chunk)), 0u);
          }
          if ((ready & (kIoHup | kIoError)) != 0) {
            break;  // ping-pong protocol: nothing can be in flight by FIN
          }
        }
        engine->Deregister(handle);
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    // Churn uthreads keep both runqueues busy so the steal path engages.
    std::atomic<int> churned{0};
    for (int i = 0; i < 4; i++) {
      Runtime::Spawn([&churned] {
        for (int k = 0; k < 20'000; k++) {
          Runtime::Yield();
        }
        churned.fetch_add(1, std::memory_order_release);
      });
    }
    while (finished.load(std::memory_order_acquire) < kConns ||
           churned.load(std::memory_order_acquire) < 4) {
      Runtime::SleepFor(500);
    }
  });
  for (std::thread& t : clients) {
    t.join();
  }
}

TEST(IoEngineTest, CompletionPeerResetMidSend) {
  // RST lands while an async send is in flight and the multishot recv is
  // armed: the error must latch kIoError (waking the handler), the send
  // queue must drop, and teardown must not leak ops or buffers (ASan).
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  TcpPair pair = MakeTcpPair();
  const int sndbuf = 4096;
  ASSERT_EQ(setsockopt(pair.server, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)), 0);
  std::atomic<bool> queued{false};
  std::thread client([&] {
    // Never reads; aborts the connection once the server's queue is primed.
    while (!queued.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    linger lg{1, 0};
    ASSERT_EQ(setsockopt(pair.client, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)), 0);
    close(pair.client);  // RST
  });
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server, IoRegisterMode::kStream);
    ASSERT_NE(handle, nullptr);
    ASSERT_NE(handle->cs, nullptr);
    Runtime::Spawn([&, handle] {
      // Far more than sndbuf + rcvbuf: guaranteed still queued at the RST.
      ASSERT_GT(engine->SendEnqueue(handle, PatternBytes(1 << 20, 13)), 0u);
      queued.store(true, std::memory_order_release);
      unsigned ready = 0;
      while ((ready & (kIoError | kIoHup)) == 0) {
        ready = WaitForReadable(handle);
        DrainRecvInto(engine, handle, nullptr);
      }
      // The failed send CQE dropped the queue so teardown cannot wait on
      // bytes that can never leave.
      while (engine->SendQueuedBytes(handle) > 0) {
        Runtime::SleepFor(500);
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  client.join();
}

TEST(IoEngineTest, CompletionEofDeliveredAfterData) {
  // Graceful FIN: every data CQE precedes the zero-byte EOF CQE, so a
  // handler that wakes on kIoHup still finds (and must drain) all bytes.
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  TcpPair pair = MakeTcpPair();
  constexpr std::size_t kTotal = 10 * 1024;
  const std::string payload = PatternBytes(kTotal, 21);
  std::thread client([&] {
    std::size_t sent = 0;
    while (sent < kTotal) {
      const ssize_t n = write(pair.client, payload.data() + sent, kTotal - sent);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
    close(pair.client);  // immediate FIN behind the data
  });
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(pair.server, IoRegisterMode::kStream);
    ASSERT_NE(handle, nullptr);
    ASSERT_NE(handle->cs, nullptr);
    Runtime::Spawn([&, handle] {
      std::string got;
      unsigned ready = 0;
      while ((ready & (kIoHup | kIoError)) == 0 || got.size() < kTotal) {
        ready |= WaitForReadable(handle);
        ASSERT_EQ(ready & kIoError, 0u);
        DrainRecvInto(engine, handle, &got);
      }
      EXPECT_EQ(got, payload);
      EXPECT_NE(ready & kIoHup, 0u);
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  client.join();
}

TEST(IoEngineTest, CompletionMultishotAcceptQueuesFds) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  const int lfd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 16), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; c++) {
    clients.emplace_back([&, c] {
      const int fd = socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
      const char byte = static_cast<char>('A' + c);
      ASSERT_EQ(write(fd, &byte, 1), 1);
      char reply = 0;
      ASSERT_EQ(read(fd, &reply, 1), 1);
      EXPECT_EQ(reply, byte);
      close(fd);
    });
  }
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* listener = engine->Register(lfd, IoRegisterMode::kListener);
    ASSERT_NE(listener, nullptr);
    ASSERT_NE(listener->cs, nullptr);
    Runtime::Spawn([&, listener] {
      std::atomic<int> served{0};
      int accepted = 0;
      while (accepted < kClients) {
        WaitForReadable(listener);
        int fd;
        while ((fd = engine->TakeAccepted(listener)) >= 0) {
          accepted++;
          IoHandle* conn = engine->Register(fd, IoRegisterMode::kStream);
          ASSERT_NE(conn, nullptr);
          Runtime::Spawn([&, conn] {
            std::string got;
            while (got.empty()) {
              WaitForReadable(conn);
              DrainRecvInto(engine, conn, &got);
            }
            ASSERT_GT(engine->SendEnqueue(conn, got), 0u);
            // One-byte echo: wait for the drain latch, then tear down.
            while (engine->SendQueuedBytes(conn) > 0) {
              const unsigned w = WaitForWritable(conn);
              if ((w & (kIoWritable | kIoError)) == 0) {
                Runtime::Yield();
              }
            }
            engine->Deregister(conn);
            served.fetch_add(1, std::memory_order_release);
          });
        }
      }
      while (served.load(std::memory_order_acquire) < kClients) {
        Runtime::SleepFor(500);
      }
      engine->Deregister(listener);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
    EXPECT_GE(IoCounterValue("completion_accepts"), kClients);
  });
  for (std::thread& t : clients) {
    t.join();
  }
}

TEST(IoEngineTest, CompletionDatagramRoundTrip) {
  Runtime rt(RuntimeOptions{.workers = 1, .io_engine = true});
  if (!rt.io_engine(0)->completion()) {
    GTEST_SKIP() << "completion data path unavailable on this build/kernel";
  }
  const int ufd = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(ufd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(ufd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(getsockname(ufd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);

  constexpr int kDatagrams = 20;
  std::thread client([&] {
    const int fd = socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    for (int i = 0; i < kDatagrams; i++) {
      const std::string msg = "dgram-" + std::to_string(i);
      ASSERT_EQ(sendto(fd, msg.data(), msg.size(), 0, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)),
                static_cast<ssize_t>(msg.size()));
    }
    // Loopback UDP is lossless at this scale; echoes may arrive reordered.
    std::vector<bool> seen(kDatagrams, false);
    char buf[256];
    for (int i = 0; i < kDatagrams; i++) {
      const ssize_t n = recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
      ASSERT_GT(n, 6);
      buf[n] = '\0';
      const int idx = std::atoi(buf + 6);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, kDatagrams);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
    close(fd);
  });
  std::atomic<bool> done{false};
  rt.Run([&] {
    IoEngine* engine = rt.io_engine(0);
    IoHandle* handle = engine->Register(ufd, IoRegisterMode::kDatagram);
    ASSERT_NE(handle, nullptr);
    ASSERT_NE(handle->cs, nullptr);
    Runtime::Spawn([&, handle] {
      int echoed = 0;
      while (echoed < kDatagrams) {
        WaitForReadable(handle);
        IoRecvSlice slice;
        while (engine->PopRecv(handle, &slice)) {
          IoDatagram dgram;
          ASSERT_TRUE(IoEngine::ParseDatagram(slice, &dgram));
          ASSERT_TRUE(engine->SendDatagram(handle, dgram.peer,
                                           std::string(dgram.data, dgram.len)));
          engine->RecycleBuffer(slice.buf_id);
          echoed++;
        }
      }
      engine->Deregister(handle);
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  });
  client.join();
}

}  // namespace
}  // namespace skyloft
