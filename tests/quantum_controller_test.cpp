// Tests for the adaptive preemption-quantum controller (DESIGN.md section
// 13): the pure control law (parking at clamps, move-reversal on worsened
// windows, the protected-empty relax signal) and the controller glue
// (interval windowing via LatencyHistogram::DeltaSince, Reset absorption,
// protected-kind steering, EWMA smoothing, hook application, trace events).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/trace.h"
#include "src/runtime/quantum_controller.h"

namespace skyloft {
namespace {

QuantumControllerConfig TestConfig() {
  QuantumControllerConfig config;
  config.slo_slowdown_x100 = 1000;  // 10x
  config.tighten_at = 0.8;          // congested at p99 >= 800
  config.relax_below = 0.5;         // comfortable at p99 < 500
  config.quantum_min = Micros(2);
  config.quantum_max = Micros(200);
  config.quantum_initial = Micros(16);
  config.tighten_div = 2.0;
  config.relax_mul = 1.5;
  config.flip_worsen_frac = 0.5;
  config.min_window_samples = 32;
  config.signal_ewma = 1.0;  // law tests want raw windows
  config.tick_budget_per_core_hz = 150e3;
  return config;
}

QuantumWindowSignals Window(std::int64_t p99, std::uint64_t samples = 1000,
                            double ticks_hz = 1e3) {
  QuantumWindowSignals s;
  s.p99_slowdown_x100 = p99;
  s.samples = samples;
  s.total_samples = samples;
  s.ticks_per_core_per_sec = ticks_hz;
  return s;
}

// ---- Control law ----

TEST(QuantumControlLawTest, HoldsBelowMinWindowSamples) {
  QuantumControlLaw law(TestConfig());
  QuantumWindowSignals s = Window(/*p99=*/5000, /*samples=*/10);
  s.total_samples = 10;  // fewer completions than min_window_samples
  EXPECT_EQ(law.Step(Micros(16), s), Micros(16));
}

TEST(QuantumControlLawTest, CongestionTightensToFloorAndParks) {
  QuantumControlLaw law(TestConfig());
  DurationNs q = Micros(16);
  // Steady unattainable congestion: 16 -> 8 -> 4 -> 2, then park.
  for (const DurationNs expected : {Micros(8), Micros(4), Micros(2)}) {
    q = law.Step(q, Window(5000));
    EXPECT_EQ(q, expected);
  }
  for (int i = 0; i < 5; i++) {
    q = law.Step(q, Window(5000));
    EXPECT_EQ(q, Micros(2)) << "bounced off the floor on step " << i;
  }
}

TEST(QuantumControlLawTest, FloorParkIsUnconditional) {
  QuantumControlLaw law(TestConfig());
  DurationNs q = Micros(4);
  q = law.Step(q, Window(2000));  // tighten 4 -> 2
  ASSERT_EQ(q, Micros(2));
  // Windowed p99 doubling at the floor is indistinguishable from tail noise;
  // probing up in a head-of-line regime is the expensive mistake, so the law
  // must stay parked however bad consecutive windows look.
  std::int64_t p99 = 2000;
  for (int i = 0; i < 6; i++) {
    p99 *= 2;
    q = law.Step(q, Window(p99));
    EXPECT_EQ(q, Micros(2)) << "left the floor on step " << i;
  }
}

TEST(QuantumControlLawTest, ProtectedEmptyWindowRelaxesTowardCeiling) {
  QuantumControlLaw law(TestConfig());
  QuantumWindowSignals s;
  s.p99_slowdown_x100 = -1;  // no protected tail this window
  s.samples = 0;             // ...but plenty of traffic flowed
  s.total_samples = 1000;
  DurationNs q = Micros(16);
  DurationNs prev = q;
  for (int i = 0; i < 32; i++) {
    q = law.Step(q, s);
    EXPECT_GE(q, prev) << "protected-empty window tightened on step " << i;
    prev = q;
  }
  EXPECT_EQ(q, TestConfig().quantum_max);
}

TEST(QuantumControlLawTest, ComfortableRelaxesOnlyAboveTickBudget) {
  QuantumControlLaw law(TestConfig());
  // Comfortable tail, tick volume within budget: hold.
  EXPECT_EQ(law.Step(Micros(16), Window(100, 1000, /*ticks_hz=*/50e3)), Micros(16));
  // Comfortable tail, tick volume above budget: shed overhead.
  EXPECT_EQ(law.Step(Micros(16), Window(100, 1000, /*ticks_hz=*/200e3)), Micros(24));
}

// Regression: the worsened-window reversal must key off the *last move*, not
// the direction variable. The comfortable branch resets direction_ to
// kTighten after relaxing; a toggle of direction_ then points kRelax — the
// same way as the harmful move — and the law runs away toward the ceiling
// instead of undoing the probe.
TEST(QuantumControlLawTest, WorsenedWindowReversesLastMove) {
  QuantumControlLaw law(TestConfig());
  // Park at the floor under congestion.
  DurationNs q = Micros(2);
  q = law.Step(q, Window(900));
  ASSERT_EQ(q, Micros(2));
  // A comfortable, tick-heavy window relaxes 2 -> 3.
  q = law.Step(q, Window(400, 1000, /*ticks_hz=*/200e3));
  ASSERT_EQ(q, Micros(3));
  // The relax made the tail materially worse (1500 > 400 * 1.5): the next
  // congested step must move BACK down, not relax again.
  q = law.Step(q, Window(1500));
  EXPECT_LT(q, Micros(3));
  EXPECT_EQ(q, Micros(2));
}

TEST(QuantumControlLawTest, CeilingReprobesDownOnMaterialWorsening) {
  QuantumControllerConfig config = TestConfig();
  QuantumControlLaw law(config);
  // Reach the ceiling via the protected-empty relax path.
  QuantumWindowSignals empty;
  empty.p99_slowdown_x100 = -1;
  empty.samples = 0;
  empty.total_samples = 1000;
  DurationNs q = Micros(16);
  for (int i = 0; i < 32; i++) {
    q = law.Step(q, empty);
  }
  ASSERT_EQ(q, config.quantum_max);
  // Congestion appears (a regime shift toward head-of-line blocking): the
  // first congested window carries no move memory, so the probe heads down.
  q = law.Step(q, Window(5000));
  EXPECT_LT(q, config.quantum_max);
}

// ---- Controller glue ----

struct Recorded {
  std::vector<DurationNs> quanta;
  std::vector<DurationNs> periods;
};

QuantumController::Hooks RecordingHooks(Recorded* rec) {
  QuantumController::Hooks hooks;
  hooks.apply_quantum = [rec](DurationNs q, int) { rec->quanta.push_back(q); };
  hooks.apply_timer_period = [rec](DurationNs p) { rec->periods.push_back(p); };
  return hooks;
}

void RecordMany(LatencyHistogram* h, std::int64_t value, int n) {
  for (int i = 0; i < n; i++) {
    h->Record(value);
  }
}

TEST(QuantumControllerTest, ApplyInitialFiresHooksAndTraceCounter) {
  QuantumControllerConfig config = TestConfig();
  config.timer_period_frac = 1.0;
  config.timer_period_min = Micros(2);
  config.timer_period_max = Micros(10);  // below quantum_initial: must clamp
  Recorded rec;
  QuantumController ctl(config, RecordingHooks(&rec));
  SchedTracer tracer(64);
  ctl.SetTracer(&tracer);
  ctl.ApplyInitial(0);
  ASSERT_EQ(rec.quanta.size(), 1u);
  EXPECT_EQ(rec.quanta[0], config.quantum_initial);
  ASSERT_EQ(rec.periods.size(), 1u);
  EXPECT_EQ(rec.periods[0], Micros(10));  // clamped to timer_period_max
  EXPECT_EQ(tracer.CountOf(TraceEventType::kQuantumSet), 1u);
  ASSERT_EQ(ctl.history().size(), 1u);
  EXPECT_EQ(ctl.history()[0].quantum_ns, config.quantum_initial);
}

TEST(QuantumControllerTest, PollSeesOnlyTheWindowSinceLastPoll) {
  Recorded rec;
  QuantumController ctl(TestConfig(), RecordingHooks(&rec));
  LatencyHistogram h;
  ctl.WatchSlowdown(&h);
  ctl.Poll(Millis(1));  // primes baselines only
  RecordMany(&h, 5000, 1000);
  ctl.Poll(Millis(2));  // congested window: tighten
  ASSERT_EQ(ctl.adjustments(), 1u);
  EXPECT_LT(ctl.quantum(), TestConfig().quantum_initial);
  // No new samples: the window is empty even though the cumulative histogram
  // still holds 1000 congested samples — the controller must hold.
  const DurationNs before = ctl.quantum();
  ctl.Poll(Millis(3));
  EXPECT_EQ(ctl.quantum(), before);
  EXPECT_EQ(ctl.adjustments(), 1u);
}

TEST(QuantumControllerTest, ResetBetweenPollsIsAbsorbed) {
  Recorded rec;
  QuantumController ctl(TestConfig(), RecordingHooks(&rec));
  LatencyHistogram h;
  ctl.WatchSlowdown(&h);
  ctl.Poll(Millis(1));
  RecordMany(&h, 5000, 1000);
  ctl.Poll(Millis(2));
  const DurationNs before = ctl.quantum();
  h.Reset();  // warmup-discard style reset mid-flight
  RecordMany(&h, 5000, 5);
  // The saturating delta yields a short (<= 5 sample) window, which is below
  // min_window_samples: hold, no underflow, no garbage percentile.
  ctl.Poll(Millis(3));
  EXPECT_EQ(ctl.quantum(), before);
}

TEST(QuantumControllerTest, ProtectedTailSteersOverOverall) {
  Recorded rec;
  QuantumController ctl(TestConfig(), RecordingHooks(&rec));
  LatencyHistogram overall;
  LatencyHistogram prot;
  ctl.WatchSlowdown(&overall);
  ctl.WatchProtected(&prot);
  std::uint64_t ticks = 0;
  ctl.WatchTicks([&ticks] { return ticks; }, /*cores=*/1);
  ctl.Poll(Millis(1));
  // Overall tail is terrible (long requests), protected tail is comfortable,
  // tick volume is above budget: the controller must steer by the protected
  // tail and relax, not tighten on the overall one.
  RecordMany(&overall, 20000, 1000);
  RecordMany(&prot, 100, 200);
  ticks += 1'000'000;  // 1M ticks in 1ms >> budget
  ctl.Poll(Millis(2));
  EXPECT_GT(ctl.quantum(), TestConfig().quantum_initial);
}

TEST(QuantumControllerTest, ProtectedEmptyWindowWithTrafficRelaxes) {
  Recorded rec;
  QuantumController ctl(TestConfig(), RecordingHooks(&rec));
  LatencyHistogram overall;
  LatencyHistogram prot;
  ctl.WatchSlowdown(&overall);
  ctl.WatchProtected(&prot);
  ctl.Poll(Millis(1));
  RecordMany(&overall, 900, 1000);  // traffic flowed, all of it unprotected
  ctl.Poll(Millis(2));
  EXPECT_GT(ctl.quantum(), TestConfig().quantum_initial);
}

TEST(QuantumControllerTest, EwmaDampsOneWindowSpike) {
  QuantumControllerConfig config = TestConfig();
  config.signal_ewma = 0.1;
  Recorded rec;
  QuantumController ctl(config, RecordingHooks(&rec));
  LatencyHistogram h;
  ctl.WatchSlowdown(&h);
  ctl.Poll(Millis(1));
  RecordMany(&h, 100, 1000);  // seeds the EWMA comfortable (1x)
  ctl.Poll(Millis(2));
  const DurationNs before = ctl.quantum();
  // One noisy window at 20x: smoothed = 0.1 * 2000 + 0.9 * 100 = 290 < 800,
  // so the spike must NOT tighten the quantum (unsmoothed it would).
  RecordMany(&h, 2000, 1000);
  ctl.Poll(Millis(3));
  EXPECT_EQ(ctl.quantum(), before);
}

TEST(QuantumControllerTest, QuantumChangesAppendHistoryAndTraceEvents) {
  Recorded rec;
  QuantumController ctl(TestConfig(), RecordingHooks(&rec));
  SchedTracer tracer(64);
  ctl.SetTracer(&tracer);
  LatencyHistogram h;
  ctl.WatchSlowdown(&h);
  ctl.ApplyInitial(0);
  ctl.Poll(Millis(1));
  RecordMany(&h, 5000, 1000);
  ctl.Poll(Millis(2));
  RecordMany(&h, 5000, 1000);
  ctl.Poll(Millis(3));
  EXPECT_GE(ctl.adjustments(), 2u);
  // history = initial apply + one point per adjustment; each emitted a
  // kQuantumSet counter event carrying the quantum in task_id.
  EXPECT_EQ(ctl.history().size(), 1 + ctl.adjustments());
  EXPECT_EQ(tracer.CountOf(TraceEventType::kQuantumSet), 1 + ctl.adjustments());
}

}  // namespace
}  // namespace skyloft
