// Tests for the second wave of host-runtime primitives: SleepFor, counting
// semaphore, and the bounded channel.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

TEST(SleepTest, SleepsAtLeastRequested) {
  Runtime rt(RuntimeOptions{.workers = 1});
  std::chrono::steady_clock::duration slept{};
  rt.Run([&] {
    const auto start = std::chrono::steady_clock::now();
    Runtime::SleepFor(2000);  // 2 ms
    slept = std::chrono::steady_clock::now() - start;
  });
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(slept).count(), 2000);
}

TEST(SleepTest, OthersRunWhileSleeping) {
  Runtime rt(RuntimeOptions{.workers = 1});
  std::atomic<int> progress{0};
  rt.Run([&] {
    UThread* worker_thread = Runtime::Spawn([&] {
      for (int i = 0; i < 100; i++) {
        progress.fetch_add(1);
        Runtime::Yield();
      }
    });
    Runtime::SleepFor(3000);
    EXPECT_EQ(progress.load(), 100) << "the worker must have run during the sleep";
    Runtime::Join(worker_thread);
  });
}

TEST(SleepTest, ManySleepersWakeInOrder) {
  // One worker: with idle-first external placement, woken sleepers on
  // multiple workers may finish their post-sleep code in any order; a single
  // FIFO queue makes completion order == wake order == deadline order.
  Runtime rt(RuntimeOptions{.workers = 1});
  std::mutex order_mu;
  std::vector<int> order;
  rt.Run([&] {
    std::vector<UThread*> sleepers;
    for (int i = 3; i >= 1; i--) {  // longest sleeper spawned first
      sleepers.push_back(Runtime::Spawn([&, i] {
        Runtime::SleepFor(static_cast<std::int64_t>(i) * 3000);
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }));
    }
    for (UThread* s : sleepers) {
      Runtime::Join(s);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SemaphoreTest, InitialPermits) {
  Runtime rt(RuntimeOptions{.workers = 1});
  rt.Run([&] {
    UthreadSemaphore sem(2);
    EXPECT_TRUE(sem.TryAcquire());
    EXPECT_TRUE(sem.TryAcquire());
    EXPECT_FALSE(sem.TryAcquire());
    sem.Release();
    EXPECT_TRUE(sem.TryAcquire());
  });
}

TEST(SemaphoreTest, BoundsConcurrency) {
  Runtime rt(RuntimeOptions{.workers = 4});
  UthreadSemaphore sem(3);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  rt.Run([&] {
    std::vector<UThread*> threads;
    for (int i = 0; i < 20; i++) {
      threads.push_back(Runtime::Spawn([&] {
        sem.Acquire();
        const int now_inside = inside.fetch_add(1) + 1;
        int expected = max_inside.load();
        while (now_inside > expected && !max_inside.compare_exchange_weak(expected, now_inside)) {
        }
        for (int y = 0; y < 5; y++) {
          Runtime::Yield();
        }
        inside.fetch_sub(1);
        sem.Release();
      }));
    }
    for (UThread* t : threads) {
      Runtime::Join(t);
    }
  });
  EXPECT_LE(max_inside.load(), 3);
  EXPECT_GE(max_inside.load(), 1);
  EXPECT_EQ(inside.load(), 0);
}

TEST(ChannelTest, SendReceiveOrder) {
  Runtime rt(RuntimeOptions{.workers = 1});
  rt.Run([&] {
    UthreadChannel<int> channel(4);
    UThread* producer = Runtime::Spawn([&] {
      for (int i = 0; i < 100; i++) {
        EXPECT_TRUE(channel.Send(i));
      }
      channel.Close();
    });
    int expected = 0;
    int value;
    while (channel.Receive(&value)) {
      EXPECT_EQ(value, expected++);
    }
    EXPECT_EQ(expected, 100);
    Runtime::Join(producer);
  });
}

TEST(ChannelTest, BackpressureBlocksSender) {
  Runtime rt(RuntimeOptions{.workers = 1});
  rt.Run([&] {
    UthreadChannel<int> channel(2);
    int sent = 0;
    UThread* producer = Runtime::Spawn([&] {
      for (int i = 0; i < 10; i++) {
        channel.Send(i);
        sent++;
      }
    });
    for (int i = 0; i < 20; i++) {
      Runtime::Yield();
    }
    EXPECT_LE(sent, 3) << "producer must stall at capacity";
    int value;
    for (int i = 0; i < 10; i++) {
      EXPECT_TRUE(channel.Receive(&value));
      EXPECT_EQ(value, i);
    }
    Runtime::Join(producer);
    EXPECT_EQ(sent, 10);
  });
}

TEST(ChannelTest, CloseUnblocksReceivers) {
  Runtime rt(RuntimeOptions{.workers = 2});
  std::atomic<int> finished{0};
  rt.Run([&] {
    UthreadChannel<int> channel(1);
    std::vector<UThread*> receivers;
    for (int i = 0; i < 4; i++) {
      receivers.push_back(Runtime::Spawn([&] {
        int value;
        while (channel.Receive(&value)) {
        }
        finished.fetch_add(1);
      }));
    }
    for (int i = 0; i < 10; i++) {
      Runtime::Yield();
    }
    channel.Close();
    for (UThread* r : receivers) {
      Runtime::Join(r);
    }
  });
  EXPECT_EQ(finished.load(), 4);
}

TEST(ChannelTest, SendAfterCloseFails) {
  Runtime rt(RuntimeOptions{.workers = 1});
  rt.Run([&] {
    UthreadChannel<int> channel(2);
    channel.Send(1);
    channel.Close();
    EXPECT_FALSE(channel.Send(2));
    int value;
    EXPECT_TRUE(channel.Receive(&value)) << "close still drains buffered items";
    EXPECT_EQ(value, 1);
    EXPECT_FALSE(channel.Receive(&value));
  });
}

TEST(ChannelTest, MpmcPipelineAcrossWorkers) {
  Runtime rt(RuntimeOptions{.workers = 4});
  std::atomic<long long> sum{0};
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 500;
  rt.Run([&] {
    UthreadChannel<int> channel(8);
    std::vector<UThread*> threads;
    std::atomic<int> producers_left{kProducers};
    for (int p = 0; p < kProducers; p++) {
      threads.push_back(Runtime::Spawn([&] {
        for (int i = 1; i <= kItemsEach; i++) {
          channel.Send(i);
        }
        if (producers_left.fetch_sub(1) == 1) {
          channel.Close();
        }
      }));
    }
    for (int c = 0; c < 3; c++) {
      threads.push_back(Runtime::Spawn([&] {
        int value;
        while (channel.Receive(&value)) {
          sum.fetch_add(value);
        }
      }));
    }
    for (UThread* t : threads) {
      Runtime::Join(t);
    }
  });
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kProducers) * kItemsEach * (kItemsEach + 1) / 2);
}

}  // namespace
}  // namespace skyloft
