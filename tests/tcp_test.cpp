// Tests for the lightweight TCP model: handshake, reliable in-order
// exactly-once delivery (including under loss), retransmission, windowing,
// and teardown.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/simcore/simulation.h"
#include "src/net/tcp.h"

namespace skyloft {
namespace {

struct TcpRig {
  explicit TcpRig(double loss = 0.0, std::uint64_t seed = 1)
      : wire(&sim, /*delay=*/Micros(10), loss, seed),
        client(&sim, &wire, "client"),
        server(&sim, &wire, "server") {
    wire.Attach(&client, &server);
    server.SetReceiveCallback([this](const std::string& data) { server_received += data; });
    client.SetReceiveCallback([this](const std::string& data) { client_received += data; });
  }

  void Establish() {
    server.Listen();
    client.Connect();
    sim.RunUntil(Millis(1));
    ASSERT_EQ(client.state(), TcpState::kEstablished);
    ASSERT_EQ(server.state(), TcpState::kEstablished);
  }

  Simulation sim;
  TcpWire wire;
  TcpEndpoint client;
  TcpEndpoint server;
  std::string server_received;
  std::string client_received;
};

TEST(TcpTest, ThreeWayHandshake) {
  TcpRig rig;
  rig.Establish();
}

TEST(TcpTest, SimpleDataTransfer) {
  TcpRig rig;
  rig.Establish();
  rig.client.Send("hello tcp");
  rig.sim.RunUntil(Millis(2));
  EXPECT_EQ(rig.server_received, "hello tcp");
}

TEST(TcpTest, BidirectionalTransfer) {
  TcpRig rig;
  rig.Establish();
  rig.client.Send("ping");
  rig.server.Send("pong");
  rig.sim.RunUntil(Millis(2));
  EXPECT_EQ(rig.server_received, "ping");
  EXPECT_EQ(rig.client_received, "pong");
}

TEST(TcpTest, LargeTransferSegments) {
  TcpRig rig;
  rig.Establish();
  std::string blob;
  for (int i = 0; i < 5000; i++) {
    blob += static_cast<char>('a' + i % 26);
  }
  rig.client.Send(blob);
  rig.sim.RunUntil(Millis(20));
  EXPECT_EQ(rig.server_received, blob) << "multi-segment payload must arrive intact";
}

TEST(TcpTest, SendBeforeEstablishedIsQueued) {
  TcpRig rig;
  rig.server.Listen();
  rig.client.Connect();
  rig.client.Send("early");  // handshake still in flight
  rig.sim.RunUntil(Millis(2));
  EXPECT_EQ(rig.server_received, "early");
}

TEST(TcpTest, RetransmissionRecoversFromLoss) {
  TcpRig rig(/*loss=*/0.2, /*seed=*/7);
  rig.server.Listen();
  rig.client.Connect();
  rig.sim.RunUntil(Millis(50));  // handshake may itself need retransmits
  ASSERT_EQ(rig.client.state(), TcpState::kEstablished);
  std::string blob;
  for (int i = 0; i < 3000; i++) {
    blob += static_cast<char>('0' + i % 10);
  }
  rig.client.Send(blob);
  rig.sim.RunUntil(kSecond);
  EXPECT_EQ(rig.server_received, blob) << "exactly-once in-order delivery under 20% loss";
  EXPECT_GT(rig.client.retransmits() + rig.server.retransmits(), 0u);
  EXPECT_GT(rig.wire.dropped(), 0u);
}

TEST(TcpTest, HeavyLossManyMessages) {
  TcpRig rig(/*loss=*/0.35, /*seed=*/99);
  rig.server.Listen();
  rig.client.Connect();
  rig.sim.RunUntil(Millis(200));
  ASSERT_EQ(rig.client.state(), TcpState::kEstablished);
  std::string expected;
  for (int i = 0; i < 50; i++) {
    const std::string msg = "msg-" + std::to_string(i) + ";";
    expected += msg;
    rig.client.Send(msg);
    rig.sim.RunUntil(rig.sim.Now() + Millis(10));
  }
  rig.sim.RunUntil(rig.sim.Now() + kSecond);
  EXPECT_EQ(rig.server_received, expected);
}

TEST(TcpTest, CloseAfterDrain) {
  TcpRig rig;
  rig.Establish();
  rig.client.Send("last words");
  rig.client.Close();
  rig.sim.RunUntil(Millis(5));
  EXPECT_EQ(rig.server_received, "last words");
  EXPECT_EQ(rig.server.state(), TcpState::kCloseWait);
  EXPECT_EQ(rig.client.state(), TcpState::kTimeWait);
}

TEST(TcpTest, BothSidesClose) {
  TcpRig rig;
  rig.Establish();
  rig.client.Send("a");
  rig.server.Send("b");
  rig.sim.RunUntil(Millis(2));
  rig.client.Close();
  rig.sim.RunUntil(Millis(4));
  rig.server.Close();
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(rig.client.state(), TcpState::kTimeWait);
  EXPECT_EQ(rig.server.state(), TcpState::kTimeWait);
}

TEST(TcpTest, DeterministicUnderLoss) {
  auto run = [] {
    TcpRig rig(0.25, 1234);
    rig.server.Listen();
    rig.client.Connect();
    rig.sim.RunUntil(Millis(100));
    rig.client.Send(std::string(2000, 'x'));
    rig.sim.RunUntil(kSecond);
    return std::make_tuple(rig.server_received.size(), rig.client.retransmits(),
                           rig.wire.dropped(), rig.sim.EventsExecuted());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace skyloft
