// Direct unit tests of the scheduling policies against the Table 2
// operations interface, independent of any engine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/libos/task.h"
#include "src/sched/policy.h"
#include "src/policies/cfs.h"
#include "src/policies/eevdf.h"
#include "src/policies/round_robin.h"
#include "src/policies/shinjuku.h"
#include "src/policies/work_stealing.h"

namespace skyloft {
namespace {

class FakeView : public EngineView {
 public:
  explicit FakeView(int workers) : workers_(workers) {}
  TimeNs Now() const override { return now; }
  int NumWorkers() const override { return workers_; }
  CoreId WorkerCore(int index) const override { return index; }
  bool IsWorkerIdle(int index) const override { return true; }
  TimeNs now = 0;

 private:
  int workers_;
};

std::unique_ptr<Task> MakeTask(std::uint64_t id) {
  auto task = std::make_unique<Task>();
  task->id = id;
  task->state = TaskState::kRunnable;
  return task;
}

// ---- Round Robin ----

class RoundRobinTest : public ::testing::Test {
 protected:
  RoundRobinTest() : view_(2), policy_(Micros(50)) { policy_.SchedInit(&view_); }
  FakeView view_;
  RoundRobinPolicy policy_;
};

TEST_F(RoundRobinTest, FifoPerWorker) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);
  EXPECT_EQ(policy_.TaskDequeue(0), a.get());
  EXPECT_EQ(policy_.TaskDequeue(0), b.get());
  EXPECT_EQ(policy_.TaskDequeue(0), nullptr);
}

TEST_F(RoundRobinTest, HintlessPlacementRoundRobins) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskEnqueue(a.get(), kEnqueueNew, -1);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, -1);
  // One task per queue.
  EXPECT_NE(policy_.TaskDequeue(0), nullptr);
  EXPECT_NE(policy_.TaskDequeue(1), nullptr);
}

TEST_F(RoundRobinTest, NoPreemptBeforeSliceExpires) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);  // someone waiting
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Micros(20)));
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Micros(20)));
  EXPECT_TRUE(policy_.SchedTimerTick(0, current, Micros(20)));  // 60us > 50us
}

TEST_F(RoundRobinTest, NoPreemptWithEmptyQueue) {
  auto a = MakeTask(1);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Micros(500)))
      << "round-robin to an empty queue is pure overhead";
}

TEST_F(RoundRobinTest, SliceResetsOnDequeue) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);
  EXPECT_TRUE(policy_.SchedTimerTick(0, current, Micros(60)));
  policy_.TaskEnqueue(current, kEnqueuePreempted, 0);
  // b runs, then a is dequeued again: its slice must restart.
  EXPECT_EQ(policy_.TaskDequeue(0), b.get());
  policy_.TaskEnqueue(b.get(), kEnqueuePreempted, 0);
  EXPECT_EQ(policy_.TaskDequeue(0), a.get());
  EXPECT_FALSE(policy_.SchedTimerTick(0, a.get(), Micros(20)));
}

TEST_F(RoundRobinTest, InfiniteSliceNeverPreempts) {
  RoundRobinPolicy fifo(kInfiniteSlice);
  FakeView view(1);
  fifo.SchedInit(&view);
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  fifo.TaskInit(a.get());
  fifo.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = fifo.TaskDequeue(0);
  fifo.TaskEnqueue(b.get(), kEnqueueNew, 0);
  EXPECT_FALSE(fifo.SchedTimerTick(0, current, Millis(100)));
}

TEST_F(RoundRobinTest, BalanceStealsFromLoadedQueue) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 1);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 1);
  EXPECT_EQ(policy_.TaskDequeue(0), nullptr);
  policy_.SchedBalance(0);
  EXPECT_NE(policy_.TaskDequeue(0), nullptr);
  EXPECT_EQ(policy_.QueuedTasks(), 1u);
}

// ---- CFS ----

class CfsTest : public ::testing::Test {
 protected:
  CfsTest() : view_(2), policy_(CfsParams{Micros(12) + 500, Micros(50)}) {
    policy_.SchedInit(&view_);
  }
  FakeView view_;
  CfsPolicy policy_;
};

TEST_F(CfsTest, PicksLowestVruntime) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  // Run a for a while; its vruntime grows.
  policy_.SchedTimerTick(0, current, Micros(100));
  policy_.TaskEnqueue(current, kEnqueuePreempted, 0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);
  // Fresh b (sleeper-placed near min_vruntime) beats a's accumulated time.
  EXPECT_EQ(policy_.TaskDequeue(0), b.get());
}

TEST_F(CfsTest, PreemptsAfterSliceWhenBehind) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);
  // Before a slice elapses: no preemption.
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Micros(10)));
  // After enough runtime the waiting task's lower vruntime wins.
  EXPECT_TRUE(policy_.SchedTimerTick(0, current, Micros(100)));
}

TEST_F(CfsTest, NoPreemptionWhenAlone) {
  auto a = MakeTask(1);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Millis(10)));
}

TEST_F(CfsTest, SleeperCompensationBoundsVruntime) {
  // A task that slept a long time must not starve everyone else forever:
  // placement is bounded below relative to min_vruntime.
  auto hog = MakeTask(1);
  auto sleeper = MakeTask(2);
  policy_.TaskInit(hog.get());
  policy_.TaskInit(sleeper.get());
  policy_.TaskEnqueue(hog.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  for (int i = 0; i < 100; i++) {
    policy_.SchedTimerTick(0, current, Micros(50));
  }
  policy_.TaskEnqueue(current, kEnqueuePreempted, 0);
  policy_.TaskEnqueue(sleeper.get(), kEnqueueWakeup, 0);
  // Sleeper runs first (compensation)...
  ASSERT_EQ(policy_.TaskDequeue(0), sleeper.get());
  // ...but only with a bounded head start: after one latency period it gets
  // preempted in favor of the hog rather than monopolizing the core.
  bool preempted = false;
  for (int i = 0; i < 10 && !preempted; i++) {
    preempted = policy_.SchedTimerTick(0, sleeper.get(), Micros(50));
  }
  EXPECT_TRUE(preempted);
}

TEST_F(CfsTest, BalanceRenormalizesVruntime) {
  auto a = MakeTask(1);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 1);
  policy_.SchedBalance(0);
  EXPECT_EQ(policy_.TaskDequeue(0), a.get());
  EXPECT_EQ(policy_.QueuedTasks(), 0u);
}

// ---- EEVDF ----

class EevdfTest : public ::testing::Test {
 protected:
  EevdfTest() : view_(2), policy_(EevdfParams{Micros(12) + 500}) { policy_.SchedInit(&view_); }
  FakeView view_;
  EevdfPolicy policy_;
};

TEST_F(EevdfTest, JoinsWithZeroLag) {
  auto a = MakeTask(1);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  EXPECT_EQ(policy_.LagOf(a.get(), 0), 0);
}

TEST_F(EevdfTest, EarliestDeadlineAmongEligibleWins) {
  // a runs while c waits (so V advances at half the wall rate); then a fresh
  // b joins. Dispatch order must be: c (earliest deadline), b, then a (whose
  // vruntime ran ahead of V — negative lag — making it ineligible).
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  auto c = MakeTask(3);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskInit(c.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  policy_.TaskEnqueue(c.get(), kEnqueueNew, 0);
  policy_.SchedTimerTick(0, current, Micros(50));  // a: v=50us; V=25us
  policy_.TaskEnqueue(current, kEnqueuePreempted, 0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);  // b: v=25us, d=37.5us
  EXPECT_EQ(policy_.TaskDequeue(0), c.get());
  EXPECT_EQ(policy_.TaskDequeue(0), b.get());
  EXPECT_EQ(policy_.TaskDequeue(0), a.get());
}

TEST_F(EevdfTest, SliceExhaustionPushesDeadline) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);
  // Run past the base slice: must preempt in favor of the eligible waiter.
  EXPECT_TRUE(policy_.SchedTimerTick(0, current, Micros(20)));
}

TEST_F(EevdfTest, NoPreemptWhenAlone) {
  auto a = MakeTask(1);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Millis(5)));
}

TEST_F(EevdfTest, FairnessOverManySlices) {
  // Two CPU-bound tasks sharing one queue must receive equal virtual time.
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 0);
  DurationNs ran_a = 0;
  DurationNs ran_b = 0;
  SchedItem* current = policy_.TaskDequeue(0);
  for (int tick = 0; tick < 1000; tick++) {
    const DurationNs step = Micros(5);
    (current == a.get() ? ran_a : ran_b) += step;
    if (policy_.SchedTimerTick(0, current, step)) {
      policy_.TaskEnqueue(current, kEnqueuePreempted, 0);
      current = policy_.TaskDequeue(0);
    }
  }
  const double ratio = static_cast<double>(ran_a) / static_cast<double>(ran_b);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST_F(EevdfTest, DequeueFallsBackWhenNoneEligible) {
  // A preempted task can carry negative lag (vruntime > V); it must still be
  // dispatchable when it is the only task.
  auto a = MakeTask(1);
  policy_.TaskInit(a.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  policy_.SchedTimerTick(0, current, Micros(100));  // vruntime >> V
  policy_.TaskEnqueue(current, kEnqueuePreempted, 0);
  EXPECT_EQ(policy_.TaskDequeue(0), a.get());
}

// ---- Work stealing ----

class WorkStealingTest : public ::testing::Test {
 protected:
  WorkStealingTest() : view_(4), policy_(WorkStealingParams{Micros(5), 1}) {
    policy_.SchedInit(&view_);
  }
  FakeView view_;
  WorkStealingPolicy policy_;
};

TEST_F(WorkStealingTest, LocalFifo) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 2);
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 2);
  EXPECT_EQ(policy_.TaskDequeue(2), a.get());
  EXPECT_EQ(policy_.TaskDequeue(2), b.get());
}

TEST_F(WorkStealingTest, StealsHalfTheVictimQueue) {
  std::vector<std::unique_ptr<Task>> tasks;
  for (int i = 0; i < 8; i++) {
    tasks.push_back(MakeTask(static_cast<std::uint64_t>(i)));
    policy_.TaskInit(tasks.back().get());
    policy_.TaskEnqueue(tasks.back().get(), kEnqueueNew, 3);
  }
  policy_.SchedBalance(0);
  EXPECT_EQ(policy_.steals(), 4u);
  int local = 0;
  while (policy_.TaskDequeue(0) != nullptr) {
    local++;
  }
  EXPECT_EQ(local, 4);
}

TEST_F(WorkStealingTest, BalanceWithNoWorkIsNoop) {
  policy_.SchedBalance(0);
  EXPECT_EQ(policy_.steals(), 0u);
  EXPECT_EQ(policy_.TaskDequeue(0), nullptr);
}

TEST_F(WorkStealingTest, QuantumPreemptsOnlyWithBacklog) {
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy_.TaskInit(a.get());
  policy_.TaskInit(b.get());
  policy_.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = policy_.TaskDequeue(0);
  // No backlog: run past the quantum freely.
  EXPECT_FALSE(policy_.SchedTimerTick(0, current, Micros(100)));
  // With backlog anywhere, the next tick preempts.
  policy_.TaskEnqueue(b.get(), kEnqueueNew, 3);
  EXPECT_TRUE(policy_.SchedTimerTick(0, current, Micros(5)));
}

TEST_F(WorkStealingTest, InfiniteQuantumNeverPreempts) {
  WorkStealingPolicy shenango(WorkStealingParams{kInfiniteSliceWs, 1});
  FakeView view(2);
  shenango.SchedInit(&view);
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  shenango.TaskInit(a.get());
  shenango.TaskEnqueue(a.get(), kEnqueueNew, 0);
  SchedItem* current = shenango.TaskDequeue(0);
  shenango.TaskEnqueue(b.get(), kEnqueueNew, 0);
  EXPECT_FALSE(shenango.SchedTimerTick(0, current, Millis(100)));
}

// ---- Shinjuku ----

TEST(ShinjukuTest, GlobalFifoQueue) {
  ShinjukuPolicy policy;
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy.TaskEnqueue(a.get(), kEnqueueNew, -1);
  policy.TaskEnqueue(b.get(), kEnqueueNew, -1);
  EXPECT_EQ(policy.QueuedTasks(), 2u);
  EXPECT_EQ(policy.TaskDequeue(-1), a.get());
  EXPECT_EQ(policy.TaskDequeue(-1), b.get());
  EXPECT_EQ(policy.TaskDequeue(-1), nullptr);
}

TEST(ShinjukuTest, PreemptedGoesToTail) {
  ShinjukuPolicy policy;
  auto a = MakeTask(1);
  auto b = MakeTask(2);
  policy.TaskEnqueue(a.get(), kEnqueueNew, -1);
  SchedItem* current = policy.TaskDequeue(-1);
  policy.TaskEnqueue(b.get(), kEnqueueNew, -1);
  policy.TaskEnqueue(current, kEnqueuePreempted, -1);  // processor sharing
  EXPECT_EQ(policy.TaskDequeue(-1), b.get());
  EXPECT_EQ(policy.TaskDequeue(-1), a.get());
}

TEST(ShinjukuTest, IsCentralized) {
  ShinjukuPolicy policy;
  EXPECT_TRUE(policy.IsCentralized());
  EXPECT_FALSE(policy.SchedTimerTick(0, nullptr, 0));
}

}  // namespace
}  // namespace skyloft
