// Tests for the unified metrics layer (src/base/metrics.h) and its adoption
// by the sim engines, the uintr chip, the kernel sim, and the host runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/base/metrics.h"
#include "src/base/random.h"
#include "src/libos/engine_stats.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/round_robin.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

TEST(CounterTest, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; i++) {
        c.Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(7);
  g.Set(-3);
  EXPECT_EQ(g.Value(), -3);
}

TEST(ShardedCounterTest, AggregatesAcrossLanes) {
  ShardedCounter c(4);
  EXPECT_EQ(c.shards(), 4);
  c.Inc(0);
  c.Inc(1, 5);
  c.Inc(3);
  // Out-of-range shard indices wrap instead of indexing out of bounds.
  c.Inc(7, 2);
  EXPECT_EQ(c.Value(), 9u);
}

TEST(ShardedCounterTest, ConcurrentPerShardIncrementsAreExact) {
  constexpr int kShards = 4;
  constexpr int kPerShard = 50000;
  ShardedCounter c(kShards);
  std::vector<std::thread> threads;
  for (int s = 0; s < kShards; s++) {
    threads.emplace_back([&c, s] {
      for (int i = 0; i < kPerShard; i++) {
        c.Inc(s);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kShards) * kPerShard);
}

TEST(MetricGroupTest, SampleQualifiesNames) {
  MetricGroup group("grp");
  group.AddCounter("hits")->Inc(3);
  group.AddGauge("depth")->Set(-2);
  group.AddSharded("spread", 2)->Inc(1, 4);
  group.LinkValue("answer", [] { return std::int64_t{42}; });
  std::vector<MetricSample> samples;
  group.Sample(&samples);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "grp.hits");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 3);
  EXPECT_EQ(samples[1].name, "grp.depth");
  EXPECT_EQ(samples[1].value, -2);
  EXPECT_EQ(samples[2].name, "grp.spread");
  EXPECT_EQ(samples[2].value, 4);
  EXPECT_EQ(samples[3].name, "grp.answer");
  EXPECT_EQ(samples[3].value, 42);
}

TEST(MetricGroupTest, LinkedHistogramSummarizes) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(5000);
  MetricGroup group("grp");
  group.LinkHistogram("lat", &h);
  std::vector<MetricSample> samples;
  group.Sample(&samples);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[0].count, 2u);
  EXPECT_EQ(samples[0].min, 1000);
  EXPECT_EQ(samples[0].max, 5000);
  EXPECT_GE(samples[0].p99, samples[0].p50);
  EXPECT_DOUBLE_EQ(samples[0].mean, 3000.0);
}

TEST(RegistryTest, GroupsRegisterForTheirLifetime) {
  const int before = MetricsRegistry::Global().group_count();
  {
    MetricGroup group("ephemeral");
    EXPECT_EQ(MetricsRegistry::Global().group_count(), before + 1);
  }
  EXPECT_EQ(MetricsRegistry::Global().group_count(), before);
}

TEST(RegistryTest, ToJsonRendersQualifiedNames) {
  MetricGroup group("jsontest");
  group.AddCounter("things")->Inc(2);
  LatencyHistogram h;
  h.Record(100);
  group.LinkHistogram("lat", &h);
  const std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"jsontest.things\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"jsontest.lat\":{\"count\":1"), std::string::npos) << json;
}

// ---- Substrate adoption ----

struct Rig {
  Rig() {
    MachineConfig mcfg;
    mcfg.num_cores = 1;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

TEST(MetricsAdoptionTest, EngineStatsAppearInRegistry) {
  Rig rig;
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.timer_hz = 100'000;
  cfg.tick_path = TickPath::kUserTimer;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.Submit(engine.NewTask(app, Micros(100)));
  rig.sim.RunUntil(Millis(5));
  ASSERT_EQ(engine.stats().completed, 1u);

  bool found = false;
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    if (s.name == "engine.completed" && s.value == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "engine stats must be registered in the global registry";
}

TEST(MetricsAdoptionTest, ChipAndKernelCountInterruptVolume) {
  Rig rig;
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.timer_hz = 100'000;
  cfg.tick_path = TickPath::kUserTimer;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(2)));
  rig.sim.RunUntil(Millis(5));

  // The user-timer tick path must show up as measured interrupt volume: the
  // kernel programmed the timer, and the chip delivered timer user IRQs.
  EXPECT_GT(rig.kernel->counters().timer_programs.Value(), 0u);
  EXPECT_GT(rig.chip->counters().user_timer_irqs.Value(), 0u);
  EXPECT_GT(rig.chip->counters().user_irqs_delivered.Value(), 0u);
}

// Regression (out-of-range task kind): NewTask must clamp the kind into
// [0, kMaxKinds); pre-fix, a kind >= kMaxKinds indexed past the end of the
// per-kind histogram arrays when the segment finished.
TEST(MetricsAdoptionTest, OutOfRangeTaskKindIsClamped) {
  Rig rig;
  RoundRobinPolicy policy(kInfiniteSlice);
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.tick_path = TickPath::kNone;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("a");
  engine.Start();
  Task* task = engine.NewTask(app, Micros(100), /*kind=*/99);
  EXPECT_EQ(task->kind, EngineStats::kMaxKinds - 1);
  engine.Submit(task);
  rig.sim.RunUntil(Millis(5));
  EXPECT_EQ(engine.stats().completed, 1u);
  EXPECT_EQ(engine.stats().latency_by_kind[EngineStats::kMaxKinds - 1].Count(), 1u);
}

TEST(MetricsAdoptionTest, RuntimeCountersAreRegistered) {
  RuntimeOptions opts{.workers = 2, .preempt_period_us = 0};
  Runtime rt(opts);
  std::atomic<int> ran{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 4; i++) {
      children.push_back(Runtime::Spawn([&] { ran.fetch_add(1); }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  EXPECT_EQ(ran.load(), 4);
  // Run()'s main-fn submission comes from off-runtime: counted as external.
  EXPECT_GT(rt.external_placements(), 0u);
  bool found_preemptions = false;
  bool found_steals = false;
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    if (s.name == "runtime.preemptions") {
      found_preemptions = true;
    }
    if (s.name == "host_sched.steals") {
      found_steals = true;
    }
  }
  EXPECT_TRUE(found_preemptions);
  EXPECT_TRUE(found_steals);
}

// The cluster aggregation path: merging per-shard EngineStats must be
// indistinguishable from having recorded every sample into one stats block.
TEST(EngineStatsMergeTest, MergeMatchesConcatenatedSamplesReference) {
  constexpr int kShards = 3;
  Rng rng(17);
  std::vector<EngineStats> shard(kShards);
  EngineStats reference;
  reference.Reset(0);
  for (int s = 0; s < kShards; s++) {
    // Shards reset at different times; the merged window starts at the
    // earliest one.
    shard[static_cast<std::size_t>(s)].Reset(Micros(10) * (s + 1));
  }
  for (int i = 0; i < 5000; i++) {
    auto& dst = shard[rng.NextBelow(kShards)];
    const auto latency = static_cast<std::int64_t>(1 + rng.NextBelow(10'000'000));
    const auto wakeup = static_cast<std::int64_t>(rng.NextBelow(100'000));
    const auto slowdown = static_cast<std::int64_t>(100 + rng.NextBelow(50'000));
    const int kind = static_cast<int>(rng.NextBelow(EngineStats::kMaxKinds));
    for (EngineStats* stats : {&dst, &reference}) {
      stats->request_latency.Record(latency);
      stats->wakeup_latency.Record(wakeup);
      stats->slowdown_x100.Record(slowdown);
      stats->latency_by_kind[static_cast<std::size_t>(kind)].Record(latency);
      stats->slowdown_by_kind_x100[static_cast<std::size_t>(kind)].Record(slowdown);
      stats->completed++;
    }
  }

  EngineStats fleet;
  fleet.Reset(kSecond);  // later than any shard: the merge must rewind it
  for (const EngineStats& s : shard) {
    fleet.MergeFrom(s);
  }

  EXPECT_EQ(fleet.completed, reference.completed);
  EXPECT_EQ(fleet.epoch_start, Micros(10));
  auto expect_same = [](const LatencyHistogram& a, const LatencyHistogram& b) {
    EXPECT_EQ(a.Count(), b.Count());
    EXPECT_EQ(a.Min(), b.Min());
    EXPECT_EQ(a.Max(), b.Max());
    EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(a.Percentile(q), b.Percentile(q)) << "q=" << q;
    }
  };
  expect_same(fleet.request_latency, reference.request_latency);
  expect_same(fleet.wakeup_latency, reference.wakeup_latency);
  expect_same(fleet.slowdown_x100, reference.slowdown_x100);
  for (std::size_t k = 0; k < EngineStats::kMaxKinds; k++) {
    expect_same(fleet.latency_by_kind[k], reference.latency_by_kind[k]);
    expect_same(fleet.slowdown_by_kind_x100[k], reference.slowdown_by_kind_x100[k]);
  }
  // Throughput over the merged window uses the widened epoch.
  EXPECT_DOUBLE_EQ(fleet.ThroughputRps(kSecond),
                   5000.0 * 1e9 / static_cast<double>(kSecond - Micros(10)));
}

// ---- Interval snapshots (LatencyHistogram::DeltaSince, ISSUE 9) ----
//
// The quantum controller polls faster than samples arrive at low load, so
// empty windows and Reset()s mid-flight must produce defined results, and a
// non-empty window must look like a fresh histogram of just the new samples.

TEST(IntervalSnapshotTest, EmptyHistogramAndEmptyWindowAreDefined) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), LatencyHistogram::kEmptySentinel);
  EXPECT_EQ(h.Percentile(0.999), LatencyHistogram::kEmptySentinel);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);

  h.Record(42);
  // Baseline == current: a window with no new samples, even though the
  // cumulative histogram is non-empty.
  const LatencyHistogram window = h.DeltaSince(h);
  EXPECT_EQ(window.Count(), 0u);
  EXPECT_EQ(window.Percentile(0.99), LatencyHistogram::kEmptySentinel);
  EXPECT_EQ(window.Min(), 0);
  EXPECT_EQ(window.Max(), 0);
  EXPECT_DOUBLE_EQ(window.Mean(), 0.0);
}

TEST(IntervalSnapshotTest, WindowMatchesFreshHistogramOfNewSamples) {
  Rng rng(2026);
  for (int trial = 0; trial < 20; trial++) {
    LatencyHistogram h;
    const int pre = static_cast<int>(rng.NextBelow(2000));
    for (int i = 0; i < pre; i++) {
      h.Record(static_cast<std::int64_t>(1 + rng.NextBelow(10'000'000)));
    }
    const LatencyHistogram baseline = h;
    LatencyHistogram reference;
    const int fresh = static_cast<int>(1 + rng.NextBelow(3000));
    for (int i = 0; i < fresh; i++) {
      const auto v = static_cast<std::int64_t>(1 + rng.NextBelow(10'000'000));
      h.Record(v);
      reference.Record(v);
    }
    const LatencyHistogram window = h.DeltaSince(baseline);
    ASSERT_EQ(window.Count(), reference.Count()) << "trial " << trial;
    // Bucket counts in the delta are exact, so bucket-bound percentiles
    // agree with a fresh histogram except at the edges, where the window's
    // min/max are reconstructed from bucket bounds (within one bucket,
    // <= 1/64 relative) rather than tracked exactly.
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      const double a = static_cast<double>(window.Percentile(q));
      const double b = static_cast<double>(reference.Percentile(q));
      EXPECT_NEAR(a, b, 0.03 * b + 1.0) << "trial " << trial << " q=" << q;
    }
  }
}

TEST(IntervalSnapshotTest, ResetBetweenSnapshotsSaturatesToShortWindow) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; i++) {
    h.Record(1000 + i);
  }
  const LatencyHistogram baseline = h;
  h.Reset();
  for (int i = 0; i < 5; i++) {
    h.Record(500);
  }
  // Bucket-wise saturating subtraction: the window can undercount (new
  // samples landing in buckets the baseline already occupied vanish) but
  // must never underflow into a huge bogus count or a negative value.
  const LatencyHistogram window = h.DeltaSince(baseline);
  EXPECT_LE(window.Count(), 5u);
  EXPECT_GE(window.Min(), 0);
  EXPECT_GE(window.Max(), window.Min());
  // Reconstructed from bucket bounds (a Reset intervened, so the exact
  // cumulative extremes cannot tighten it): within 1/64 above the true max.
  EXPECT_LE(window.Percentile(0.99), h.Max() + h.Max() / 64 + 1);
}

}  // namespace
}  // namespace skyloft
