// Tests for the host M:N user-level threading runtime: context switching,
// spawn/join, yield fairness, work stealing, park/unpark races, mutex and
// condition variable semantics, and signal-timer preemption.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

TEST(RuntimeTest, MainFunctionRuns) {
  Runtime rt(RuntimeOptions{.workers = 1});
  bool ran = false;
  rt.Run([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(RuntimeTest, RunTwiceOnSameRuntime) {
  Runtime rt(RuntimeOptions{.workers = 1});
  int runs = 0;
  rt.Run([&] { runs++; });
  rt.Run([&] { runs++; });
  EXPECT_EQ(runs, 2);
}

TEST(RuntimeTest, SpawnAndJoin) {
  Runtime rt(RuntimeOptions{.workers = 1});
  int value = 0;
  rt.Run([&] {
    UThread* child = Runtime::Spawn([&] { value = 42; });
    Runtime::Join(child);
    EXPECT_EQ(value, 42);
  });
  EXPECT_EQ(value, 42);
}

TEST(RuntimeTest, SpawnManySequential) {
  Runtime rt(RuntimeOptions{.workers = 1});
  std::atomic<int> count{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 1000; i++) {
      children.push_back(Runtime::Spawn([&] { count.fetch_add(1); }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(RuntimeTest, YieldInterleavesThreads) {
  Runtime rt(RuntimeOptions{.workers = 1});
  std::vector<int> order;
  rt.Run([&] {
    UThread* a = Runtime::Spawn([&] {
      for (int i = 0; i < 3; i++) {
        order.push_back(1);
        Runtime::Yield();
      }
    });
    UThread* b = Runtime::Spawn([&] {
      for (int i = 0; i < 3; i++) {
        order.push_back(2);
        Runtime::Yield();
      }
    });
    Runtime::Join(a);
    Runtime::Join(b);
  });
  // On one worker with FIFO queues, the two threads strictly alternate.
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i + 2 < order.size(); i++) {
    EXPECT_NE(order[i], order[i + 1]) << "yield must round-robin";
  }
}

TEST(RuntimeTest, NestedSpawn) {
  Runtime rt(RuntimeOptions{.workers = 1});
  int depth_reached = 0;
  rt.Run([&] {
    std::function<void(int)> recurse = [&](int depth) {
      depth_reached = std::max(depth_reached, depth);
      if (depth < 10) {
        UThread* child = Runtime::Spawn([&recurse, depth] { recurse(depth + 1); });
        Runtime::Join(child);
      }
    };
    recurse(0);
  });
  EXPECT_EQ(depth_reached, 10);
}

TEST(RuntimeTest, JoinAlreadyFinishedThread) {
  Runtime rt(RuntimeOptions{.workers = 1});
  rt.Run([&] {
    UThread* child = Runtime::Spawn([] {});
    // Let the child run to completion first.
    for (int i = 0; i < 10; i++) {
      Runtime::Yield();
    }
    Runtime::Join(child);  // must not hang
  });
}

TEST(RuntimeTest, MultiWorkerSpawnStorm) {
  Runtime rt(RuntimeOptions{.workers = 4});
  std::atomic<int> count{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 2000; i++) {
      children.push_back(Runtime::Spawn([&] {
        count.fetch_add(1);
        Runtime::Yield();
        count.fetch_add(1);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  EXPECT_EQ(count.load(), 4000);
}

TEST(RuntimeTest, WorkStealingSpreadsLoad) {
  Runtime rt(RuntimeOptions{.workers = 4});
  std::atomic<int> count{0};
  int expected = 0;
  // On a single-CPU host the sibling worker pthreads only run when the
  // kernel timeslices them in; repeat batches until a steal is observed.
  for (int round = 0; round < 50 && rt.steals() == 0; round++) {
    expected += 200;
    rt.Run([&] {
      std::vector<UThread*> children;
      for (int i = 0; i < 200; i++) {
        children.push_back(Runtime::Spawn([&] {
          // Enough yields that idle workers get a chance to steal.
          for (int j = 0; j < 50; j++) {
            Runtime::Yield();
          }
          count.fetch_add(1);
        }));
      }
      for (UThread* c : children) {
        Runtime::Join(c);
      }
    });
  }
  EXPECT_EQ(count.load(), expected);
  EXPECT_GT(rt.steals(), 0u) << "idle workers should have stolen work";
}

TEST(RuntimeTest, StackReuseAfterExit) {
  // Recycling uthreads must not corrupt state: run several generations.
  Runtime rt(RuntimeOptions{.workers = 2});
  std::atomic<int> count{0};
  rt.Run([&] {
    for (int gen = 0; gen < 20; gen++) {
      std::vector<UThread*> children;
      for (int i = 0; i < 50; i++) {
        children.push_back(Runtime::Spawn([&] {
          volatile char buf[2048];  // touch a chunk of stack
          buf[0] = 1;
          buf[2047] = 2;
          count.fetch_add(buf[0] + buf[2047]);  // 3 per child if stacks are intact
        }));
      }
      for (UThread* c : children) {
        Runtime::Join(c);
      }
    }
  });
  EXPECT_EQ(count.load(), 3000);  // 20 generations x 50 children x 3
}

// ---- Mutex ----

TEST(RuntimeSyncTest, MutexMutualExclusion) {
  Runtime rt(RuntimeOptions{.workers = 4});
  UthreadMutex mutex;
  int counter = 0;  // deliberately unsynchronized except by the mutex
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 8; i++) {
      children.push_back(Runtime::Spawn([&] {
        for (int j = 0; j < 1000; j++) {
          UthreadMutexGuard guard(&mutex);
          counter++;
        }
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  EXPECT_EQ(counter, 8000);
}

TEST(RuntimeSyncTest, MutexTryLock) {
  Runtime rt(RuntimeOptions{.workers = 1});
  UthreadMutex mutex;
  rt.Run([&] {
    EXPECT_TRUE(mutex.TryLock());
    EXPECT_FALSE(mutex.TryLock());
    mutex.Unlock();
    EXPECT_TRUE(mutex.TryLock());
    mutex.Unlock();
  });
}

TEST(RuntimeSyncTest, MutexBlocksAndWakes) {
  Runtime rt(RuntimeOptions{.workers = 1});
  UthreadMutex mutex;
  std::vector<int> order;
  rt.Run([&] {
    mutex.Lock();
    UThread* child = Runtime::Spawn([&] {
      mutex.Lock();  // blocks until the main thread unlocks
      order.push_back(2);
      mutex.Unlock();
    });
    Runtime::Yield();  // let the child block on the mutex
    order.push_back(1);
    mutex.Unlock();
    Runtime::Join(child);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---- Condition variable ----

TEST(RuntimeSyncTest, CondVarSignalWakesOne) {
  Runtime rt(RuntimeOptions{.workers = 1});
  UthreadMutex mutex;
  UthreadCondVar cv;
  bool ready = false;
  bool observed = false;
  rt.Run([&] {
    UThread* waiter = Runtime::Spawn([&] {
      mutex.Lock();
      while (!ready) {
        cv.Wait(&mutex);
      }
      observed = true;
      mutex.Unlock();
    });
    Runtime::Yield();  // waiter blocks on the cv
    mutex.Lock();
    ready = true;
    mutex.Unlock();
    cv.Signal();
    Runtime::Join(waiter);
  });
  EXPECT_TRUE(observed);
}

TEST(RuntimeSyncTest, CondVarBroadcastWakesAll) {
  Runtime rt(RuntimeOptions{.workers = 2});
  UthreadMutex mutex;
  UthreadCondVar cv;
  bool ready = false;
  std::atomic<int> woken{0};
  rt.Run([&] {
    std::vector<UThread*> waiters;
    for (int i = 0; i < 10; i++) {
      waiters.push_back(Runtime::Spawn([&] {
        mutex.Lock();
        while (!ready) {
          cv.Wait(&mutex);
        }
        mutex.Unlock();
        woken.fetch_add(1);
      }));
    }
    for (int i = 0; i < 20; i++) {
      Runtime::Yield();
    }
    mutex.Lock();
    ready = true;
    mutex.Unlock();
    cv.Broadcast();
    for (UThread* w : waiters) {
      Runtime::Join(w);
    }
  });
  EXPECT_EQ(woken.load(), 10);
}

TEST(RuntimeSyncTest, SignalWithNoWaitersIsNoop) {
  Runtime rt(RuntimeOptions{.workers = 1});
  UthreadCondVar cv;
  rt.Run([&] {
    cv.Signal();
    cv.Broadcast();
  });
}

// Producer/consumer pipeline across workers.
TEST(RuntimeSyncTest, ProducerConsumerPipeline) {
  Runtime rt(RuntimeOptions{.workers = 2});
  UthreadMutex mutex;
  UthreadCondVar not_empty;
  UthreadCondVar not_full;
  std::vector<int> queue;
  constexpr std::size_t kCap = 4;
  constexpr int kItems = 500;
  long long sum = 0;
  rt.Run([&] {
    UThread* producer = Runtime::Spawn([&] {
      for (int i = 1; i <= kItems; i++) {
        mutex.Lock();
        while (queue.size() >= kCap) {
          not_full.Wait(&mutex);
        }
        queue.push_back(i);
        mutex.Unlock();
        not_empty.Signal();
      }
    });
    UThread* consumer = Runtime::Spawn([&] {
      for (int i = 0; i < kItems; i++) {
        mutex.Lock();
        while (queue.empty()) {
          not_empty.Wait(&mutex);
        }
        sum += queue.back();
        queue.pop_back();
        mutex.Unlock();
        not_full.Signal();
      }
    });
    Runtime::Join(producer);
    Runtime::Join(consumer);
  });
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems + 1) / 2);
}

// ---- Preemption ----

TEST(RuntimePreemptTest, CpuHogIsPreempted) {
  Runtime rt(RuntimeOptions{.workers = 1, .preempt_period_us = 2000});
  std::atomic<bool> hog_running{true};
  bool other_ran = false;
  rt.Run([&] {
    UThread* hog = Runtime::Spawn([&] {
      // Busy loop with no yields: only preemption lets anyone else run.
      volatile std::uint64_t x = 0;
      while (hog_running.load(std::memory_order_relaxed)) {
        x = x + 1;
      }
    });
    UThread* other = Runtime::Spawn([&] {
      other_ran = true;
      hog_running.store(false);
    });
    Runtime::Join(other);
    Runtime::Join(hog);
  });
  EXPECT_TRUE(other_ran) << "preemption must break the CPU hog's monopoly";
  EXPECT_GT(rt.preemptions(), 0u);
}

TEST(RuntimePreemptTest, PreemptionPreservesComputation) {
  Runtime rt(RuntimeOptions{.workers = 2, .preempt_period_us = 1000});
  std::atomic<long long> total{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 8; i++) {
      children.push_back(Runtime::Spawn([&] {
        long long local = 0;
        for (int j = 0; j < 2'000'000; j++) {
          local += j % 7;
        }
        total.fetch_add(local);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  long long expected_one = 0;
  for (int j = 0; j < 2'000'000; j++) {
    expected_one += j % 7;
  }
  EXPECT_EQ(total.load(), expected_one * 8);
}

// Allocator-heavy uthreads under an aggressive preemption timer. glibc's
// malloc keeps lockless per-pthread state (the tcache); preempting a uthread
// mid-allocation and running another uthread on the same pthread corrupts it
// unless the signal handler defers at unsafe PCs (the safe-point check).
// Without that check this test aborts within a few runs.
TEST(RuntimePreemptTest, PreemptionIsMallocSafe) {
  Runtime rt(RuntimeOptions{.workers = 2, .preempt_period_us = 500});
  std::atomic<long long> sum{0};
  rt.Run([&] {
    std::vector<UThread*> children;
    for (int i = 0; i < 8; i++) {
      children.push_back(Runtime::Spawn([&, i] {
        long long local = 0;
        for (int j = 0; j < 20'000; j++) {
          // Churn the heap across size classes; no yields.
          std::string s = "key-" + std::to_string(i * 100'000 + j);
          std::vector<char> buf(static_cast<std::size_t>(j % 509 + 1), 'x');
          s += buf[buf.size() / 2];
          local += static_cast<long long>(s.size());
        }
        sum.fetch_add(local);
      }));
    }
    for (UThread* c : children) {
      Runtime::Join(c);
    }
  });
  EXPECT_GT(sum.load(), 0);
  // The timer must have actually tried: fired switches plus deferred signals.
  EXPECT_GT(rt.preemptions() + rt.preempt_deferrals(), 0u);
}

}  // namespace
}  // namespace skyloft
