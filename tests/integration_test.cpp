// End-to-end integration tests: miniature versions of the paper's headline
// experiments asserted as invariants, plus cross-module property checks.
// These guard the benchmark results against regressions.
#include <gtest/gtest.h>

#include "src/apps/schbench.h"
#include "src/apps/workloads.h"
#include "src/baselines/systems.h"
#include "src/net/loadgen.h"

namespace skyloft {
namespace {

std::int64_t SchbenchP99(SystemSetup setup, int workers) {
  SchbenchSim bench(setup.engine.get(), setup.app, SchbenchOptions{.worker_threads = workers});
  bench.Start();
  setup.sim->RunUntil(Millis(50));
  setup.engine->ResetStats();
  setup.sim->RunUntil(Millis(250));
  return bench.WakeupPercentileNs(0.99);
}

// Fig. 5 in miniature: Skyloft's user-space 100 kHz timer beats Linux's
// kernel tick by orders of magnitude on oversubscribed wakeup latency.
TEST(PaperShapeTest, SkyloftWakeupBeatsLinuxByOrdersOfMagnitude) {
  constexpr int kCores = 8;
  constexpr int kWorkers = 16;  // 2x oversubscribed
  const auto skyloft = SchbenchP99(MakeSkyloftPerCpu(SkyloftSched::kCfs, kCores), kWorkers);
  const auto linux = SchbenchP99(MakeLinuxPerCpu(LinuxSched::kCfsTuned, kCores), kWorkers);
  EXPECT_LT(skyloft, Micros(200));
  EXPECT_GT(linux, Micros(500));
  EXPECT_GT(linux / std::max<std::int64_t>(skyloft, 1), 5);
}

TEST(PaperShapeTest, EevdfBeatsCfsBeatsRrOnWakeup) {
  constexpr int kCores = 8;
  constexpr int kWorkers = 16;
  const auto rr = SchbenchP99(MakeSkyloftPerCpu(SkyloftSched::kRr, kCores), kWorkers);
  const auto cfs = SchbenchP99(MakeSkyloftPerCpu(SkyloftSched::kCfs, kCores), kWorkers);
  const auto eevdf = SchbenchP99(MakeSkyloftPerCpu(SkyloftSched::kEevdf, kCores), kWorkers);
  EXPECT_LE(cfs, rr);
  EXPECT_LE(eevdf, cfs);
}

// Fig. 6 in miniature: wakeup latency tracks the RR slice.
TEST(PaperShapeTest, WakeupLatencyProportionalToTimeSlice) {
  constexpr int kCores = 8;
  constexpr int kWorkers = 16;
  const auto slice_5us =
      SchbenchP99(MakeSkyloftPerCpu(SkyloftSched::kRr, kCores, Micros(5)), kWorkers);
  const auto slice_500us =
      SchbenchP99(MakeSkyloftPerCpu(SkyloftSched::kRr, kCores, Micros(500)), kWorkers);
  EXPECT_GT(slice_500us, slice_5us * 5);
}

struct LoadResult {
  std::int64_t p99_short_ns = 0;
  std::int64_t p999_slowdown_x100 = 0;
  std::uint64_t completed = 0;
};

LoadResult RunDispersive(SystemSetup setup, double rate_rps, DurationNs measure = Millis(200)) {
  PoissonClient::Options copts;
  copts.rate_rps = rate_rps;
  copts.seed = 11;
  copts.rss_route = false;
  PoissonClient client(setup.engine.get(), setup.app, DispersiveMix(), copts);
  client.Start();
  setup.sim->RunUntil(Millis(30));
  setup.engine->ResetStats();
  setup.sim->RunUntil(Millis(30) + measure);
  LoadResult r;
  r.p99_short_ns = setup.engine->stats().latency_by_kind[kKindShort].Percentile(0.99);
  r.p999_slowdown_x100 = setup.engine->stats().slowdown_x100.Percentile(0.999);
  r.completed = setup.engine->stats().completed;
  return r;
}

// Fig. 7a in miniature: with quantum preemption, short requests dodge the
// 10 ms long requests; ghOSt pays visibly more than Skyloft at low load.
TEST(PaperShapeTest, QuantumPreemptionProtectsShortRequests) {
  constexpr int kWorkers = 8;
  const double rate = 0.5 * kWorkers / (MixMeanNs(DispersiveMix()) / 1e9);
  const auto skyloft = RunDispersive(MakeSkyloftShinjuku(kWorkers, Micros(30), false), rate);
  EXPECT_LT(skyloft.p99_short_ns, Micros(120));
  const auto ghost = RunDispersive(MakeGhost(kWorkers, Micros(30), false), rate);
  EXPECT_GT(ghost.p99_short_ns, skyloft.p99_short_ns);
}

// Fig. 8b in miniature: preemptive work stealing crushes the 99.9% slowdown
// of the RocksDB bimodal mix relative to non-preemptive Shenango.
TEST(PaperShapeTest, PreemptiveWorkStealingBeatsShenangoOnSlowdown) {
  constexpr int kWorkers = 8;
  const RequestMix mix = RocksdbBimodalMix();
  const double rate = 0.6 * kWorkers / (MixMeanNs(mix) / 1e9);

  auto run = [&](SystemSetup setup) {
    PoissonClient::Options copts;
    copts.rate_rps = rate;
    copts.seed = 13;
    PoissonClient client(setup.engine.get(), setup.app, mix, copts);
    client.Start();
    setup.sim->RunUntil(Millis(50));
    setup.engine->ResetStats();
    setup.sim->RunUntil(Millis(450));
    return setup.engine->stats().slowdown_x100.Percentile(0.999) / 100;
  };
  const auto skyloft_slowdown = run(MakeSkyloftWorkStealing(kWorkers, Micros(5)));
  const auto shenango_slowdown = run(MakeShenango(kWorkers));
  EXPECT_LT(skyloft_slowdown, 50);
  EXPECT_GT(shenango_slowdown, skyloft_slowdown * 3);
}

// §5.3 utimer: emulating timers from a dedicated core still preempts.
TEST(PaperShapeTest, UtimerEmulationPreempts) {
  constexpr int kWorkers = 7;
  const RequestMix mix = RocksdbBimodalMix();
  const double rate = 0.5 * kWorkers / (MixMeanNs(mix) / 1e9);
  SystemSetup setup = MakeSkyloftWorkStealing(kWorkers, Micros(5), /*utimer=*/true);
  PoissonClient::Options copts;
  copts.rate_rps = rate;
  copts.seed = 17;
  PoissonClient client(setup.engine.get(), setup.app, mix, copts);
  client.Start();
  setup.sim->RunUntil(Millis(300));
  EXPECT_GT(setup.percpu()->ticks(), 1000u) << "utimer IPIs must tick the workers";
  EXPECT_LT(setup.engine->stats().slowdown_x100.Percentile(0.999) / 100, 60);
}

// Work conservation: everything submitted eventually completes, across all
// engines and policies, under random load (property check).
class WorkConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkConservationTest, NoTaskIsLost) {
  SystemSetup setup;
  switch (GetParam()) {
    case 0:
      setup = MakeSkyloftPerCpu(SkyloftSched::kRr, 4);
      break;
    case 1:
      setup = MakeSkyloftPerCpu(SkyloftSched::kCfs, 4);
      break;
    case 2:
      setup = MakeSkyloftPerCpu(SkyloftSched::kEevdf, 4);
      break;
    case 3:
      setup = MakeSkyloftShinjuku(4, Micros(30), false);
      break;
    case 4:
      setup = MakeSkyloftWorkStealing(4, Micros(5));
      break;
    case 5:
      setup = MakeShenango(4);
      break;
    case 6:
      setup = MakeGhost(4, Micros(30), false);
      break;
    case 7:
      setup = MakeLinuxPerCpu(LinuxSched::kCfsTuned, 4);
      break;
  }
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::uint64_t submitted = 0;
  for (int i = 0; i < 2000; i++) {
    const auto at = static_cast<TimeNs>(rng.NextBelow(Millis(20)));
    setup.sim->ScheduleAt(at, [&setup, &rng, &submitted] {
      submitted++;
      const auto service = 200 + static_cast<DurationNs>(rng.NextBelow(Micros(200)));
      setup.engine->Submit(setup.engine->NewTask(setup.app, service),
                           static_cast<int>(rng.NextBelow(4)));
    });
  }
  setup.sim->RunUntil(kSecond);
  EXPECT_EQ(setup.engine->stats().completed, submitted);
  setup.kernel->CheckBindingRule();
}

INSTANTIATE_TEST_SUITE_P(AllSystems, WorkConservationTest, ::testing::Range(0, 8));

// Multi-application stress: LC + BE with the core allocator under a bursty
// load; binding rule must hold throughout and all LC work must finish.
TEST(MultiAppStressTest, AllocatorSurvivesBursts) {
  SystemSetup setup = MakeSkyloftShinjuku(6, Micros(30), /*core_alloc=*/true);
  App* be = setup.engine->CreateApp("batch", true);
  setup.central()->AttachBestEffortApp(be);
  Rng rng(77);
  std::uint64_t submitted = 0;
  // Alternating quiet and burst phases.
  for (int phase = 0; phase < 10; phase++) {
    const TimeNs base = phase * Millis(10);
    const int burst = (phase % 2 == 0) ? 400 : 10;
    for (int i = 0; i < burst; i++) {
      const auto at = base + static_cast<TimeNs>(rng.NextBelow(Millis(10)));
      setup.sim->ScheduleAt(at, [&setup, &rng, &submitted] {
        submitted++;
        setup.engine->Submit(
            setup.engine->NewTask(setup.app, 1000 + static_cast<DurationNs>(rng.NextBelow(Micros(50)))));
      });
    }
  }
  setup.sim->RunUntil(Millis(200));
  EXPECT_EQ(setup.engine->stats().completed, submitted);
  EXPECT_GT(setup.engine->CpuShare(be), 0.1) << "batch must get quiet-phase cores";
  setup.kernel->CheckBindingRule();
}

// Determinism across the whole stack: identical seeds => identical traces.
TEST(DeterminismTest, FullSystemTraceIsReproducible) {
  auto run = [] {
    SystemSetup setup = MakeSkyloftWorkStealing(4, Micros(5));
    PoissonClient::Options copts;
    copts.rate_rps = 5000;
    copts.seed = 42;
    PoissonClient client(setup.engine.get(), setup.app, RocksdbBimodalMix(), copts);
    client.Start();
    setup.sim->RunUntil(Millis(100));
    return std::make_tuple(setup.engine->stats().completed,
                           setup.engine->stats().request_latency.Max(),
                           setup.engine->stats().request_latency.Percentile(0.99),
                           setup.sim->EventsExecuted());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace skyloft
