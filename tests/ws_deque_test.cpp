// WsDeque: the Chase-Lev deque behind the host scheduler's lock-free
// runqueues. The single-thread tests pin the LIFO/FIFO-end semantics and
// buffer growth; the multi-thread stress tests drive the two races the
// memory-ordering argument in ws_deque.h covers — owner pop vs. concurrent
// thieves, and the one-element take/steal duel — and are meant to run under
// the TSan and ASan CI jobs.
#include "src/base/ws_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace skyloft {
namespace {

struct Item {
  int value = 0;
};

TEST(WsDequeTest, OwnerPopsLifoThievesStealFifo) {
  WsDeque<Item> deque;
  Item items[3] = {{1}, {2}, {3}};
  for (Item& item : items) {
    deque.PushBottom(&item);
  }
  EXPECT_EQ(deque.SizeApprox(), 3);

  Item* stolen = nullptr;
  ASSERT_EQ(deque.Steal(&stolen), StealOutcome::kSuccess);
  EXPECT_EQ(stolen->value, 1);  // FIFO end: oldest push

  EXPECT_EQ(deque.PopBottom()->value, 3);  // LIFO end: newest push
  EXPECT_EQ(deque.PopBottom()->value, 2);
  EXPECT_EQ(deque.PopBottom(), nullptr);
  EXPECT_EQ(deque.SizeApprox(), 0);
  EXPECT_EQ(deque.Steal(&stolen), StealOutcome::kEmpty);
}

TEST(WsDequeTest, GrowthPreservesEveryItem) {
  WsDeque<Item> deque(/*initial_capacity=*/2);
  constexpr int kItems = 1000;  // forces many doublings
  std::vector<Item> items(kItems);
  for (int i = 0; i < kItems; i++) {
    items[i].value = i;
    deque.PushBottom(&items[i]);
  }
  // Pop everything back; LIFO means values come out descending.
  for (int i = kItems - 1; i >= 0; i--) {
    Item* item = deque.PopBottom();
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(item->value, i);
  }
  EXPECT_EQ(deque.PopBottom(), nullptr);
}

TEST(WsDequeTest, InterleavedPushPopSingleThread) {
  WsDeque<Item> deque(/*initial_capacity=*/2);
  Item items[64];
  for (int round = 0; round < 200; round++) {
    for (int i = 0; i < 5; i++) {
      deque.PushBottom(&items[i]);
    }
    for (int i = 0; i < 5; i++) {
      EXPECT_NE(deque.PopBottom(), nullptr);
    }
    EXPECT_EQ(deque.PopBottom(), nullptr);
  }
}

// Owner pushes then drains while thieves steal concurrently: every item must
// be claimed exactly once, none lost, none duplicated.
TEST(WsDequeStressTest, OwnerPopVsConcurrentStealers) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WsDeque<Item> deque(/*initial_capacity=*/8);  // exercise growth under fire
  std::vector<Item> items(kItems);
  std::vector<std::atomic<int>> claims(kItems);
  for (int i = 0; i < kItems; i++) {
    items[i].value = i;
    claims[i].store(0);
  }
  std::atomic<int> claimed{0};
  std::atomic<bool> owner_done{false};

  auto claim = [&](Item* item) {
    claims[item->value].fetch_add(1, std::memory_order_relaxed);
    claimed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; t++) {
    thieves.emplace_back([&] {
      while (claimed.load(std::memory_order_relaxed) < kItems) {
        Item* stolen = nullptr;
        if (deque.Steal(&stolen) == StealOutcome::kSuccess) {
          claim(stolen);
        } else {
          // Empty or lost race: let the owner (or the winning thief) run —
          // on a single-core host a bare spin would burn its whole timeslice.
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: interleave pushes with occasional pops so the one-element race and
  // the mid-push steal both occur, then drain the rest.
  for (int i = 0; i < kItems; i++) {
    deque.PushBottom(&items[i]);
    if ((i & 7) == 7) {
      Item* item = deque.PopBottom();
      if (item != nullptr) {
        claim(item);
      }
    }
  }
  while (true) {
    Item* item = deque.PopBottom();
    if (item == nullptr) {
      break;
    }
    claim(item);
  }
  owner_done.store(true);
  for (std::thread& t : thieves) {
    t.join();
  }

  EXPECT_EQ(claimed.load(), kItems);
  for (int i = 0; i < kItems; i++) {
    EXPECT_EQ(claims[i].load(), 1) << "item " << i << " lost or double-claimed";
  }
}

// The tightest race in the structure: one element, owner popping while a
// thief steals. Exactly one side must win each round.
TEST(WsDequeStressTest, OneElementTakeStealDuel) {
  constexpr int kRounds = 10000;
  WsDeque<Item> deque;
  Item item{42};
  std::atomic<int> phase{0};  // 0: armed, 1: thief may go, 2: round settled
  std::atomic<int> owner_wins{0};
  std::atomic<int> thief_wins{0};

  std::thread thief([&] {
    for (int r = 0; r < kRounds; r++) {
      while (phase.load(std::memory_order_acquire) != 1) {
        std::this_thread::yield();
      }
      Item* stolen = nullptr;
      const bool won = deque.Steal(&stolen) == StealOutcome::kSuccess;
      if (won) {
        thief_wins.fetch_add(1, std::memory_order_relaxed);
      }
      phase.store(2, std::memory_order_release);
    }
  });

  for (int r = 0; r < kRounds; r++) {
    deque.PushBottom(&item);
    phase.store(1, std::memory_order_release);
    Item* popped = deque.PopBottom();
    if (popped != nullptr) {
      owner_wins.fetch_add(1, std::memory_order_relaxed);
    }
    while (phase.load(std::memory_order_acquire) != 2) {
      std::this_thread::yield();
    }
    // Exactly one winner; the deque must be empty before re-arming.
    ASSERT_EQ(deque.PopBottom(), nullptr);
    phase.store(0, std::memory_order_release);
  }
  thief.join();

  EXPECT_EQ(owner_wins.load() + thief_wins.load(), kRounds)
      << "one-element race lost or duplicated an item";
}

}  // namespace
}  // namespace skyloft
