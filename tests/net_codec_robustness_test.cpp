// Fuzz-style robustness tests for the wire codecs: every decoder must
// report needs-more/error on truncated, split, or corrupted input — never
// assert, crash, or mis-frame. The TCP serving path feeds the frame decoder
// whatever segmentation the kernel produces, so byte-at-a-time and
// split-at-every-offset delivery are the ground truth here, not edge cases.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/memcached_protocol.h"
#include "src/net/frame.h"
#include "src/net/udp.h"

namespace skyloft {
namespace {

std::string MultiFrameWire() {
  std::string wire;
  wire += EncodeFrame("GET user42");
  wire += EncodeFrame("");  // zero-length payload is a legal frame
  wire += EncodeFrame("SET user42 " + std::string(300, 'v'));
  wire += EncodeFrame("reply", FrameOp::kError);
  return wire;
}

std::vector<std::string> ExpectedPayloads() {
  return {"GET user42", "", "SET user42 " + std::string(300, 'v'), "reply"};
}

TEST(FrameDecoderRobustness, ByteAtATime) {
  const std::string wire = MultiFrameWire();
  const auto expected = ExpectedPayloads();
  FrameDecoder decoder;
  std::vector<std::string> got;
  std::vector<FrameOp> ops;
  for (const char byte : wire) {
    decoder.Feed(&byte, 1);
    std::string payload;
    FrameOp op;
    while (decoder.Next(&payload, &op) == FrameDecodeStatus::kFrame) {
      got.push_back(payload);
      ops.push_back(op);
    }
    EXPECT_FALSE(decoder.poisoned());
  }
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(ops.back(), FrameOp::kError);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderRobustness, SplitAtEveryOffset) {
  const std::string wire = MultiFrameWire();
  const auto expected = ExpectedPayloads();
  for (std::size_t split = 0; split <= wire.size(); split++) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), split);
    std::vector<std::string> got;
    std::string payload;
    while (decoder.Next(&payload) == FrameDecodeStatus::kFrame) {
      got.push_back(payload);
    }
    decoder.Feed(wire.data() + split, wire.size() - split);
    while (decoder.Next(&payload) == FrameDecodeStatus::kFrame) {
      got.push_back(payload);
    }
    EXPECT_FALSE(decoder.poisoned()) << "split at " << split;
    EXPECT_EQ(got, expected) << "split at " << split;
  }
}

TEST(FrameDecoderRobustness, TruncatedPrefixNeverYieldsFrame) {
  const std::string wire = EncodeFrame("payload-bytes");
  for (std::size_t len = 0; len < wire.size(); len++) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), len);
    std::string payload;
    EXPECT_EQ(decoder.Next(&payload), FrameDecodeStatus::kNeedMore) << "prefix " << len;
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(FrameDecoderRobustness, BadMagicPoisons) {
  std::string wire = EncodeFrame("x");
  wire[0] ^= 0x40;
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecodeStatus::kError);
  EXPECT_TRUE(decoder.poisoned());
  // Poison latches: even after feeding a pristine frame, the stream stays
  // dead (a desynchronized length-prefixed stream cannot resync safely).
  const std::string good = EncodeFrame("y");
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&payload), FrameDecodeStatus::kError);
}

TEST(FrameDecoderRobustness, BadVersionPoisons) {
  std::string wire = EncodeFrame("x");
  wire[2] = static_cast<char>(kFrameVersion + 1);
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecodeStatus::kError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoderRobustness, OversizedLengthPoisonsWithoutAllocating) {
  std::uint8_t hdr[kFrameHeaderSize];
  EncodeFrameHeader(hdr, kMaxFramePayload + 1);
  FrameDecoder decoder;
  decoder.Feed(hdr, sizeof(hdr));
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecodeStatus::kError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoderRobustness, MaxSizePayloadRoundTrips) {
  const std::string big(kMaxFramePayload, 'z');
  const std::string wire = EncodeFrame(big);
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecodeStatus::kFrame);
  EXPECT_EQ(payload, big);
}

TEST(OneShotDecodeRobustness, EveryPrefixRejected) {
  const std::string wire = EncodeFrame("datagram-payload");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(wire.data());
  for (std::size_t len = 0; len < wire.size(); len++) {
    std::string payload = "untouched";
    EXPECT_NE(DecodeFrame(bytes, len, &payload), FrameDecodeStatus::kFrame) << "prefix " << len;
    EXPECT_EQ(payload, "untouched") << "prefix " << len;
  }
  std::string payload;
  EXPECT_EQ(DecodeFrame(bytes, wire.size(), &payload), FrameDecodeStatus::kFrame);
  EXPECT_EQ(payload, "datagram-payload");
}

TEST(OneShotDecodeRobustness, TrailingGarbageRejected) {
  std::string wire = EncodeFrame("p");
  wire += "JUNK";
  std::string payload;
  EXPECT_EQ(DecodeFrame(reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size(),
                        &payload),
            FrameDecodeStatus::kError);
}

TEST(UdpParseRobustness, EveryPrefixRejected) {
  UdpDatagram dgram;
  dgram.ip.src_addr = 0x0a000001;
  dgram.ip.dst_addr = 0x0a000002;
  dgram.udp.src_port = 40000;
  dgram.udp.dst_port = 11211;
  const std::string payload = "GET user7";
  dgram.payload.assign(payload.begin(), payload.end());
  const std::vector<std::uint8_t> wire = SerializeUdp(dgram);

  for (std::size_t len = 0; len < wire.size(); len++) {
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(ParseUdp(prefix).has_value()) << "prefix " << len;
  }
  const auto parsed = ParseUdp(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::string(parsed->payload.begin(), parsed->payload.end()), payload);
}

TEST(UdpParseRobustness, EverySingleByteCorruptionRejectedOrPayloadIntact) {
  UdpDatagram dgram;
  dgram.ip.src_addr = 1;
  dgram.ip.dst_addr = 2;
  dgram.udp.src_port = 7;
  dgram.udp.dst_port = 9;
  dgram.payload = {'a', 'b', 'c'};
  const std::vector<std::uint8_t> wire = SerializeUdp(dgram);
  for (std::size_t i = 0; i < wire.size(); i++) {
    std::vector<std::uint8_t> corrupted = wire;
    corrupted[i] ^= 0x01;
    // Checksums cover the full datagram, so any single-bit flip must be
    // caught; the parse either rejects or (never) returns altered payload.
    EXPECT_FALSE(ParseUdp(corrupted).has_value()) << "byte " << i;
  }
}

TEST(McParseRobustness, ByteAtATimeNeverAdvancesEarly) {
  const std::string wire = "set thekey 5 0 4\r\ndata\r\nget thekey\r\ndelete thekey\r\n";
  std::string fed;
  std::size_t pos = 0;
  std::vector<McCommand> got;
  for (const char byte : wire) {
    fed += byte;
    while (true) {
      const std::size_t before = pos;
      const auto cmd = ParseMcCommand(fed, &pos);
      if (!cmd.has_value()) {
        EXPECT_EQ(pos, before) << "incomplete parse must not consume input";
        break;
      }
      got.push_back(*cmd);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].op, McOp::kSet);
  EXPECT_EQ(got[0].key, "thekey");
  EXPECT_EQ(got[0].data, "data");
  EXPECT_EQ(got[1].op, McOp::kGet);
  EXPECT_EQ(got[2].op, McOp::kDelete);
}

}  // namespace
}  // namespace skyloft
