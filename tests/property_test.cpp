// Parameterized property tests: invariants that must hold across policy
// types, worker counts, seeds, and load levels.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/simcore/simulation.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/cfs.h"
#include "src/policies/eevdf.h"
#include "src/policies/round_robin.h"
#include "src/policies/work_stealing.h"

namespace skyloft {
namespace {

enum class PolicyKind { kRr, kCfs, kEevdf, kWs };

std::unique_ptr<SchedPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRr:
      return std::make_unique<RoundRobinPolicy>(Micros(50));
    case PolicyKind::kCfs:
      return std::make_unique<CfsPolicy>(CfsParams{Micros(12) + 500, Micros(50)});
    case PolicyKind::kEevdf:
      return std::make_unique<EevdfPolicy>(EevdfParams{Micros(12) + 500});
    case PolicyKind::kWs:
      return std::make_unique<WorkStealingPolicy>(WorkStealingParams{Micros(10), 3});
  }
  return nullptr;
}

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRr:
      return "rr";
    case PolicyKind::kCfs:
      return "cfs";
    case PolicyKind::kEevdf:
      return "eevdf";
    case PolicyKind::kWs:
      return "ws";
  }
  return "?";
}

struct Rig {
  explicit Rig(int cores, std::unique_ptr<SchedPolicy> p, std::int64_t hz = 100'000)
      : policy(std::move(p)) {
    MachineConfig mcfg;
    mcfg.num_cores = cores;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
    PerCpuEngineConfig cfg;
    for (int i = 0; i < cores; i++) {
      cfg.base.worker_cores.push_back(i);
    }
    cfg.timer_hz = hz;
    cfg.tick_path = TickPath::kUserTimer;
    engine = std::make_unique<PerCpuEngine>(machine.get(), chip.get(), kernel.get(),
                                            policy.get(), cfg);
    app = engine->CreateApp("app");
    engine->Start();
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
  std::unique_ptr<SchedPolicy> policy;
  std::unique_ptr<PerCpuEngine> engine;
  App* app = nullptr;
};

using SweepParam = std::tuple<PolicyKind, int /*cores*/, std::uint64_t /*seed*/>;

class PolicySweepTest : public ::testing::TestWithParam<SweepParam> {};

// Property 1: conservation — every submitted task completes exactly once,
// regardless of policy, core count, or arrival pattern.
TEST_P(PolicySweepTest, TasksConservedUnderRandomLoad) {
  const auto [kind, cores, seed] = GetParam();
  Rig rig(cores, MakePolicy(kind));
  Rng rng(seed);
  std::uint64_t submitted = 0;
  for (int i = 0; i < 1500; i++) {
    const auto at = static_cast<TimeNs>(rng.NextBelow(Millis(15)));
    rig.sim.ScheduleAt(at, [&rig, &rng, &submitted, cores] {
      submitted++;
      const auto service = 100 + static_cast<DurationNs>(rng.NextBelow(Micros(300)));
      rig.engine->Submit(rig.engine->NewTask(rig.app, service),
                         static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(cores))));
    });
  }
  rig.sim.RunUntil(kSecond);
  EXPECT_EQ(rig.engine->stats().completed, submitted) << PolicyName(kind);
  rig.kernel->CheckBindingRule();
}

// Property 2: latency >= service — no task can finish faster than its
// service time, and busy time never exceeds wall time x cores.
TEST_P(PolicySweepTest, PhysicalSanity) {
  const auto [kind, cores, seed] = GetParam();
  Rig rig(cores, MakePolicy(kind));
  Rng rng(seed + 1);
  constexpr DurationNs kService = Micros(20);
  for (int i = 0; i < 500; i++) {
    const auto at = static_cast<TimeNs>(rng.NextBelow(Millis(5)));
    rig.sim.ScheduleAt(at, [&rig] {
      rig.engine->Submit(rig.engine->NewTask(rig.app, kService));
    });
  }
  rig.sim.RunUntil(kSecond);
  EXPECT_GE(rig.engine->stats().request_latency.Min(), kService);
  rig.engine->FlushAccounting();
  EXPECT_LE(rig.app->cpu_time_ns, rig.sim.Now() * cores);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicySweepTest,
    ::testing::Combine(::testing::Values(PolicyKind::kRr, PolicyKind::kCfs, PolicyKind::kEevdf,
                                         PolicyKind::kWs),
                       ::testing::Values(1, 2, 8), ::testing::Values<std::uint64_t>(1, 42)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(PolicyName(std::get<0>(info.param))) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Property 3: fairness — for the fair-share policies, N CPU-bound chunked
// tasks on one core each receive within 25% of 1/N of the CPU.
class FairnessTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(FairnessTest, EqualShareForCpuBoundTasks) {
  const PolicyKind kind = GetParam();
  Rig rig(1, MakePolicy(kind));
  constexpr int kTasks = 4;
  // Each task continuously re-submits 200 us chunks; count per-task time.
  std::array<DurationNs, kTasks> consumed = {};
  std::function<void(int)> submit_chunk = [&](int idx) {
    Task* task = rig.engine->NewTask(rig.app, Micros(200));
    task->on_segment_end = [&, idx](Task*) {
      consumed[static_cast<std::size_t>(idx)] += Micros(200);
      rig.sim.ScheduleAfter(0, [&submit_chunk, idx] { submit_chunk(idx); });
      return SegmentAction::kFinish;
    };
    rig.engine->Submit(task);
  };
  for (int i = 0; i < kTasks; i++) {
    submit_chunk(i);
  }
  rig.sim.RunUntil(Millis(100));
  DurationNs total = 0;
  for (const DurationNs c : consumed) {
    total += c;
  }
  ASSERT_GT(total, 0);
  for (int i = 0; i < kTasks; i++) {
    const double share = static_cast<double>(consumed[static_cast<std::size_t>(i)]) /
                         static_cast<double>(total);
    EXPECT_NEAR(share, 1.0 / kTasks, 0.25 / kTasks)
        << PolicyName(kind) << " task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(FairPolicies, FairnessTest,
                         ::testing::Values(PolicyKind::kRr, PolicyKind::kCfs,
                                           PolicyKind::kEevdf),
                         [](const ::testing::TestParamInfo<PolicyKind>& info) {
                           return PolicyName(info.param);
                         });

// Property 4: preemption count scales with timer frequency for a CPU hog
// with backlog (the overhead/granularity tradeoff of Fig. 6).
class TickRateTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TickRateTest, HogPreemptionTracksTimerHz) {
  const std::int64_t hz = GetParam();
  Rig rig(1, std::make_unique<RoundRobinPolicy>(HzToPeriodNs(hz)), hz);
  // Two CPU hogs sharing one core: each slice boundary preempts.
  for (int i = 0; i < 2; i++) {
    rig.engine->Submit(rig.engine->NewTask(rig.app, Millis(40)));
  }
  rig.sim.RunUntil(Millis(50));
  // Ticks delivered should match hz over the busy window (~50 ms).
  const double expected_ticks = static_cast<double>(hz) * 0.05;
  EXPECT_NEAR(static_cast<double>(rig.engine->ticks()), expected_ticks,
              expected_ticks * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Rates, TickRateTest,
                         ::testing::Values<std::int64_t>(10'000, 100'000, 200'000));

}  // namespace
}  // namespace skyloft
