// Second wave of centralized-engine tests: the modelled preemption
// mechanism, dispatcher serialization as a throughput bottleneck, quantum
// re-arm behaviour, spurious-IPI tolerance, and allocator edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "src/simcore/simulation.h"
#include "src/libos/central_engine.h"
#include "src/policies/shinjuku.h"

namespace skyloft {
namespace {

struct Rig {
  explicit Rig(int cores) {
    MachineConfig mcfg;
    mcfg.num_cores = cores;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

CentralizedEngineConfig BaseCfg(int workers, DurationNs quantum) {
  CentralizedEngineConfig cfg;
  for (int i = 0; i < workers; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.dispatcher_core = workers;
  cfg.quantum = quantum;
  cfg.base.local_switch_ns = 100;
  return cfg;
}

TEST(CentralizedModelledTest, ModelledMechanismPreempts) {
  Rig rig(2);
  ShinjukuPolicy policy;
  auto cfg = BaseCfg(1, Micros(30));
  cfg.mech = CentralizedEngineConfig::Mech::kModelled;
  cfg.preempt_delivery_ns = 2000;
  cfg.preempt_receive_ns = 1500;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("lc");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(5), 1));
  rig.sim.ScheduleAt(Micros(10), [&] { engine.Submit(engine.NewTask(app, Micros(4), 0)); });
  rig.sim.RunUntil(Millis(20));
  EXPECT_EQ(engine.stats().completed, 2u);
  // Short request must escape via modelled preemption: quantum + delivery +
  // receive + switch, well under 100 us.
  EXPECT_LT(engine.stats().latency_by_kind[0].Max(), Micros(100));
  EXPECT_GT(engine.preempts_sent(), 0u);
}

TEST(CentralizedModelledTest, HeavierMechanismRaisesShortTail) {
  auto run = [](DurationNs delivery, DurationNs receive) {
    Rig rig(2);
    ShinjukuPolicy policy;
    auto cfg = BaseCfg(1, Micros(30));
    cfg.mech = CentralizedEngineConfig::Mech::kModelled;
    cfg.preempt_delivery_ns = delivery;
    cfg.preempt_receive_ns = receive;
    CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                             cfg);
    App* app = engine.CreateApp("lc");
    engine.Start();
    // Steady stream: long tasks keep the core busy; measure short tails.
    for (int i = 0; i < 20; i++) {
      rig.sim.ScheduleAt(static_cast<TimeNs>(i) * Micros(200), [&engine, app] {
        engine.Submit(engine.NewTask(app, Micros(150), 1));
        engine.Submit(engine.NewTask(app, Micros(4), 0));
      });
    }
    rig.sim.RunUntil(Millis(50));
    return engine.stats().latency_by_kind[0].Max();
  };
  const auto light = run(600, 350);    // ~user IPI
  const auto heavy = run(2700, 3200);  // ~signal
  EXPECT_LT(light, heavy);
}

TEST(CentralizedDispatcherTest, SerializationCapsThroughput) {
  // 8 workers, 1 us tasks, but a 2 us dispatcher occupancy: the dispatcher,
  // not the workers, bounds throughput at ~500 kRPS.
  Rig rig(9);
  ShinjukuPolicy policy;
  auto cfg = BaseCfg(8, 0);
  cfg.dispatch_occupancy_ns = 2000;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* app = engine.CreateApp("lc");
  engine.Start();
  // Offer 1000 tasks in one burst; workers could absorb 8/us but the
  // dispatcher can only hand out one per 2 us.
  for (int i = 0; i < 1000; i++) {
    engine.Submit(engine.NewTask(app, Micros(1)));
  }
  rig.sim.RunUntil(Millis(1));
  // ~1 ms / 2 us = ~500 dispatched, not all 1000.
  EXPECT_GT(engine.stats().completed, 400u);
  EXPECT_LT(engine.stats().completed, 620u);
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(engine.stats().completed, 1000u);
}

TEST(CentralizedQuantumTest, ReArmsWhenQueueEmpty) {
  // A lone long task is never preempted (queue empty), but the quantum timer
  // keeps re-checking: as soon as another task arrives, preemption lands
  // within ~one quantum.
  Rig rig(2);
  ShinjukuPolicy policy;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                           BaseCfg(1, Micros(30)));
  App* app = engine.CreateApp("lc");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(2), 1));
  rig.sim.RunUntil(Millis(1));
  EXPECT_EQ(engine.preempts_sent(), 0u);
  engine.Submit(engine.NewTask(app, Micros(4), 0));
  rig.sim.RunUntil(Millis(1) + Micros(80));
  EXPECT_GE(engine.preempts_sent(), 1u);
  EXPECT_EQ(engine.stats().latency_by_kind[0].Count(), 1u)
      << "short task must have completed shortly after arriving";
}

TEST(CentralizedQuantumTest, SpuriousIpiIsAbsorbed) {
  // A preemption IPI that lands after its target already finished must not
  // preempt the successor (generation check) — the successor still completes
  // with only the small handler charge.
  Rig rig(2);
  ShinjukuPolicy policy;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                           BaseCfg(1, Micros(30)));
  App* app = engine.CreateApp("lc");
  engine.Start();
  // Task A's length is just past the quantum so the IPI is in flight right
  // as it completes; task B follows immediately.
  engine.Submit(engine.NewTask(app, Micros(30) + 500, 0));
  engine.Submit(engine.NewTask(app, Micros(20), 1));
  rig.sim.RunUntil(Millis(5));
  EXPECT_EQ(engine.stats().completed, 2u);
  // B must not have been bounced back through the queue by A's stale IPI.
  EXPECT_EQ(engine.stats().latency_by_kind[1].Max(),
            engine.stats().latency_by_kind[1].Min());
}

TEST(CentralizedAllocatorTest, MinLcWorkersRespected) {
  Rig rig(4);
  ShinjukuPolicy policy;
  auto cfg = BaseCfg(3, Micros(30));
  cfg.core_alloc = true;
  cfg.min_lc_workers = 2;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  engine.CreateApp("lc");
  App* be = engine.CreateApp("batch", true);
  engine.AttachBestEffortApp(be);
  engine.Start();
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(engine.BestEffortWorkers(), 1) << "allocator must keep 2 LC workers in reserve";
}

TEST(CentralizedAllocatorTest, GrantReclaimCyclesAreStable) {
  // Alternate quiet/burst many times; every cycle must reclaim and re-grant
  // without leaking cores or violating the binding rule.
  Rig rig(3);
  ShinjukuPolicy policy;
  auto cfg = BaseCfg(2, Micros(30));
  cfg.core_alloc = true;
  CentralizedEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* lc = engine.CreateApp("lc");
  App* be = engine.CreateApp("batch", true);
  engine.AttachBestEffortApp(be);
  engine.Start();
  std::uint64_t submitted = 0;
  for (int cycle = 0; cycle < 50; cycle++) {
    const TimeNs burst_at = Millis(1) + cycle * Millis(2);
    for (int i = 0; i < 20; i++) {
      rig.sim.ScheduleAt(burst_at, [&engine, lc, &submitted] {
        submitted++;
        engine.Submit(engine.NewTask(lc, Micros(30)));
      });
    }
  }
  rig.sim.RunUntil(Millis(110));
  EXPECT_EQ(engine.stats().completed, submitted);
  EXPECT_EQ(engine.BestEffortWorkers(), 1) << "quiet at the end: batch holds a core again";
  rig.kernel->CheckBindingRule();
}

TEST(CentralizedEngineDeathTest, DispatcherCannotBeWorker) {
  Rig rig(2);
  ShinjukuPolicy policy;
  auto cfg = BaseCfg(1, Micros(30));
  cfg.dispatcher_core = 0;  // collides with worker 0
  EXPECT_DEATH(CentralizedEngine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                                 cfg),
               "dispatcher core");
}

}  // namespace
}  // namespace skyloft
