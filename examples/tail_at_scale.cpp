// Tail-at-scale demo on the simulated substrate: why microsecond preemption
// matters for heavy-tailed workloads (the paper's central motivation, §1).
//
// Part 1 — one machine. Throws the dispersive workload (99.5% x 4 us GETs +
// 0.5% x 10 ms scans) at three schedulers on identical 8-worker machines:
//   - FIFO run-to-completion (head-of-line blocking)
//   - Skyloft-Shinjuku with a 30 us user-IPI preemption quantum
//   - Skyloft preemptive work stealing with a 5 us timer quantum
//
// Part 2 — the fleet. The same three schedulers, but now each request fans
// out from a front node to N backend shards of a ClusterSim and waits for
// the slowest one (Dean & Barroso's "tail at scale" shape). Every backend
// also serves its own dispersive background load from an independent
// per-node arrival stream (same base seed, Rng::DeriveStream per node), so a
// fan-out GET occasionally lands behind a 10 ms scan. With N shards the
// probability that *some* shard is blocked grows ~N-fold: run-to-completion
// tails get worse with scale, while us-preemption keeps p99-of-max flat.
//
//   ./build/examples/tail_at_scale            # full figure
//   ./build/examples/tail_at_scale --smoke    # seconds-long CI variant
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "src/apps/workloads.h"
#include "src/base/random.h"
#include "src/baselines/systems.h"
#include "src/net/loadgen.h"
#include "src/net/node_link.h"
#include "src/simcore/cluster_sim.h"

using namespace skyloft;

namespace {

bool g_smoke = false;

void RunOne(const char* label, SystemSetup setup, double rate_rps) {
  PoissonClient::Options options;
  options.rate_rps = rate_rps;
  options.seed = 1;
  options.rss_route = false;
  PoissonClient client(setup.engine.get(), setup.app, DispersiveMix(), options);
  client.Start();
  setup.sim->RunUntil(g_smoke ? Millis(5) : Millis(50));
  setup.engine->ResetStats();
  setup.sim->RunUntil(g_smoke ? Millis(25) : Millis(450));
  EngineStats& stats = setup.engine->stats();
  std::printf("%-22s %10.0f %12lld %12lld %14lld\n", label,
              stats.ThroughputRps(setup.sim->Now()),
              static_cast<long long>(stats.latency_by_kind[kKindShort].Percentile(0.5) / 1000),
              static_cast<long long>(stats.latency_by_kind[kKindShort].Percentile(0.99) / 1000),
              static_cast<long long>(stats.latency_by_kind[kKindShort].Max() / 1000));
}

// ---- Part 2: fan-out over a ClusterSim ----

constexpr int kBackends = 4;
constexpr int kBackendWorkers = 8;
constexpr DurationNs kLinkLatency = Micros(5);  // one-way front<->backend
constexpr DurationNs kFanoutGetNs = Micros(4);

enum class Policy { kFifo, kShinjuku, kWorkSteal };

struct FanoutRequest {
  TimeNs start = 0;
  int outstanding = 0;
};

// Front-node bookkeeping plus per-backend systems for one cluster run. All
// mutable state is touched only by its owning shard: backends only read the
// request index out of their link callback and reply over their own link;
// the front node alone updates FanoutRequest and the histogram.
struct Fleet {
  ClusterSim* cluster = nullptr;
  SimNode* front = nullptr;
  std::vector<NodeSetup> backends;
  std::vector<std::unique_ptr<PoissonClient>> background;
  std::vector<std::unique_ptr<NodeLink>> to_backend;
  std::vector<std::unique_ptr<NodeLink>> to_front;
  std::deque<FanoutRequest> requests;
  LatencyHistogram fanout_max_ns;  // per-request max over kBackends
  Rng arrivals{1};
  double rate_rps = 0;
  bool measuring = false;

  void ScheduleNextArrival() {
    const auto gap = static_cast<DurationNs>(arrivals.NextExponential(1e9 / rate_rps));
    front->ScheduleAfter(gap, [this] {
      FanOut();
      ScheduleNextArrival();
    });
  }

  void FanOut() {
    const std::size_t r = requests.size();
    requests.push_back({front->Now(), kBackends});
    for (int b = 0; b < kBackends; b++) {
      to_backend[static_cast<std::size_t>(b)]->Send([this, b, r] { ServeShard(b, r); });
    }
  }

  // Runs on backend `b`: execute one GET under that shard's scheduler, then
  // reply to the front when the task's segment completes.
  void ServeShard(int b, std::size_t r) {
    NodeSetup& node = backends[static_cast<std::size_t>(b)];
    Task* task = node.engine->NewTask(node.app, kFanoutGetNs, kKindShort);
    task->on_segment_end = [this, b, r](Task*) {
      to_front[static_cast<std::size_t>(b)]->Send([this, r] { Complete(r); });
      return SegmentAction::kFinish;
    };
    node.engine->Submit(task);
  }

  // Runs on the front node: the request is done when the slowest shard
  // (plus the return link) has answered.
  void Complete(std::size_t r) {
    FanoutRequest& req = requests[r];
    if (--req.outstanding == 0 && measuring) {
      fanout_max_ns.Record(front->Now() - req.start);
    }
  }
};

void RunFleet(const char* label, Policy policy, double background_rate) {
  ClusterSim::Options copts;
  copts.num_threads = kBackends + 1;
  ClusterSim cluster(kBackends + 1, copts);

  Fleet fleet;
  fleet.cluster = &cluster;
  fleet.front = cluster.node(kBackends);
  fleet.rate_rps = g_smoke ? 5e3 : 10e3;
  for (int b = 0; b < kBackends; b++) {
    SimNode* sim = cluster.node(b);
    switch (policy) {
      case Policy::kFifo:
        fleet.backends.push_back(MakeSkyloftPerCpuNode(sim, SkyloftSched::kFifo, kBackendWorkers));
        break;
      case Policy::kShinjuku:
        fleet.backends.push_back(MakeSkyloftShinjukuNode(sim, kBackendWorkers, Micros(30)));
        break;
      case Policy::kWorkSteal:
        fleet.backends.push_back(MakeSkyloftWorkStealingNode(sim, kBackendWorkers, Micros(5)));
        break;
    }
    fleet.to_backend.push_back(
        std::make_unique<NodeLink>(&cluster, kBackends, b, kLinkLatency));
    fleet.to_front.push_back(std::make_unique<NodeLink>(&cluster, b, kBackends, kLinkLatency));
  }
  for (int b = 0; b < kBackends; b++) {
    NodeSetup& node = fleet.backends[static_cast<std::size_t>(b)];
    PoissonClient::Options options;
    options.rate_rps = background_rate;
    options.seed = 1;    // same base seed on every node...
    options.node_id = b; // ...but an independent derived arrival stream
    options.rss_route = false;
    fleet.background.push_back(std::make_unique<PoissonClient>(
        node.engine.get(), node.app, DispersiveMix(), options));
    fleet.background.back()->Start();
  }
  fleet.ScheduleNextArrival();

  cluster.RunUntil(g_smoke ? Millis(5) : Millis(50));
  for (NodeSetup& node : fleet.backends) {
    node.engine->ResetStats();
  }
  fleet.measuring = true;
  cluster.RunUntil(g_smoke ? Millis(25) : Millis(250));

  // Fleet-wide view: merge every shard's stats as if one histogram had
  // recorded all of them (single-shard GET latency, for the comparison
  // column), then report the fan-out p99-of-max next to it.
  EngineStats fleet_stats;
  fleet_stats.Reset(cluster.Now());
  for (NodeSetup& node : fleet.backends) {
    fleet_stats.MergeFrom(node.engine->stats());
  }
  std::printf("%-22s %12lld %12lld %14lld %14lld\n", label,
              static_cast<long long>(
                  fleet_stats.latency_by_kind[kKindShort].Percentile(0.99) / 1000),
              static_cast<long long>(fleet.fanout_max_ns.Percentile(0.5) / 1000),
              static_cast<long long>(fleet.fanout_max_ns.Percentile(0.99) / 1000),
              static_cast<long long>(fleet.fanout_max_ns.Max() / 1000));
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    }
  }
  constexpr int kWorkers = 8;
  const double rate = 0.6 * kWorkers / (MixMeanNs(DispersiveMix()) / 1e9);

  std::printf("dispersive load at 60%% of capacity, 8 workers\n");
  std::printf("%-22s %10s %12s %12s %14s\n", "scheduler", "RPS", "GET p50(us)", "GET p99(us)",
              "GET max(us)");
  RunOne("fifo (no preemption)", MakeSkyloftPerCpu(SkyloftSched::kFifo, kWorkers), rate);
  RunOne("shinjuku q=30us", MakeSkyloftShinjuku(kWorkers, Micros(30), false), rate);
  RunOne("work-steal q=5us", MakeSkyloftWorkStealing(kWorkers, Micros(5)), rate);
  std::printf(
      "\nWithout preemption, a 4 us GET can sit behind a 10 ms scan (max ~10^4 us).\n"
      "With us-scale preemption, GET tails collapse by orders of magnitude.\n");

  const double background = 0.6 * kBackendWorkers / (MixMeanNs(DispersiveMix()) / 1e9);
  std::printf("\nfan-out over %d backend shards (ClusterSim, %lld us links), "
              "p99 of the max\n", kBackends,
              static_cast<long long>(kLinkLatency / 1000));
  std::printf("%-22s %12s %12s %14s %14s\n", "scheduler", "1-shard p99",
              "fanout p50", "fanout p99", "fanout max(us)");
  RunFleet("fifo (no preemption)", Policy::kFifo, background);
  RunFleet("shinjuku q=30us", Policy::kShinjuku, background);
  RunFleet("work-steal q=5us", Policy::kWorkSteal, background);
  std::printf(
      "\nWaiting on the slowest of %d shards multiplies the chance of hitting a\n"
      "blocked shard: without preemption the fan-out p99 approaches the scan\n"
      "time itself, while us-preemption keeps p99-of-max near the single-shard\n"
      "tail plus two link hops.\n", kBackends);
  return 0;
}
