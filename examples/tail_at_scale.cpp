// Tail-at-scale demo on the simulated substrate: why microsecond preemption
// matters for heavy-tailed workloads (the paper's central motivation, §1).
//
// Throws the dispersive workload (99.5% x 4 us GETs + 0.5% x 10 ms scans) at
// three schedulers on identical 8-worker machines:
//   - FIFO run-to-completion (head-of-line blocking)
//   - Skyloft-Shinjuku with a 30 us user-IPI preemption quantum
//   - Skyloft preemptive work stealing with a 5 us timer quantum
//
//   ./build/examples/tail_at_scale
#include <cstdio>

#include "src/apps/workloads.h"
#include "src/baselines/systems.h"
#include "src/net/loadgen.h"

using namespace skyloft;

namespace {

void RunOne(const char* label, SystemSetup setup, double rate_rps) {
  PoissonClient::Options options;
  options.rate_rps = rate_rps;
  options.seed = 1;
  options.rss_route = false;
  PoissonClient client(setup.engine.get(), setup.app, DispersiveMix(), options);
  client.Start();
  setup.sim->RunUntil(Millis(50));
  setup.engine->ResetStats();
  setup.sim->RunUntil(Millis(450));
  EngineStats& stats = setup.engine->stats();
  std::printf("%-22s %10.0f %12lld %12lld %14lld\n", label,
              stats.ThroughputRps(setup.sim->Now()),
              static_cast<long long>(stats.latency_by_kind[kKindShort].Percentile(0.5) / 1000),
              static_cast<long long>(stats.latency_by_kind[kKindShort].Percentile(0.99) / 1000),
              static_cast<long long>(stats.latency_by_kind[kKindShort].Max() / 1000));
}

}  // namespace

int main() {
  constexpr int kWorkers = 8;
  const double rate = 0.6 * kWorkers / (MixMeanNs(DispersiveMix()) / 1e9);

  std::printf("dispersive load at 60%% of capacity, 8 workers\n");
  std::printf("%-22s %10s %12s %12s %14s\n", "scheduler", "RPS", "GET p50(us)", "GET p99(us)",
              "GET max(us)");
  RunOne("fifo (no preemption)", MakeSkyloftPerCpu(SkyloftSched::kFifo, kWorkers), rate);
  RunOne("shinjuku q=30us", MakeSkyloftShinjuku(kWorkers, Micros(30), false), rate);
  RunOne("work-steal q=5us", MakeSkyloftWorkStealing(kWorkers, Micros(5)), rate);
  std::printf(
      "\nWithout preemption, a 4 us GET can sit behind a 10 ms scan (max ~10^4 us).\n"
      "With us-scale preemption, GET tails collapse by orders of magnitude.\n");
  return 0;
}
