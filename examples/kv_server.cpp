// A real in-memory KV server on the Skyloft host runtime.
//
// Models the paper's Memcached scenario (§5.3) end-to-end with *real* code:
// a closed-loop set of client uthreads issue GET/SET/SCAN against a sharded
// KvStore served by uthread workers; UDP framing uses the repo's codec. All
// of it runs on the M:N runtime with work stealing and (optionally)
// preemption.
//
//   ./build/examples/kv_server [workers] [clients] [requests_per_client]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/apps/kvstore.h"
#include "src/base/histogram.h"
#include "src/net/udp.h"
#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

using skyloft::KvStore;
using skyloft::LatencyHistogram;
using skyloft::Runtime;
using skyloft::RuntimeOptions;
using skyloft::UThread;

namespace {

constexpr int kShards = 8;

struct Shard {
  skyloft::UthreadMutex mutex;
  KvStore store;
};

Shard g_shards[kShards];

int ShardOf(const std::string& key) {
  unsigned h = 2166136261u;
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  }
  return static_cast<int>(h % kShards);
}

// Serves one request; returns the reply payload.
std::string Serve(const std::string& request) {
  // Wire format: "GET key" | "SET key value" | "SCAN start limit"
  const auto sp1 = request.find(' ');
  const std::string op = request.substr(0, sp1);
  if (op == "GET") {
    const std::string key = request.substr(sp1 + 1);
    Shard& shard = g_shards[ShardOf(key)];
    skyloft::UthreadMutexGuard guard(&shard.mutex);
    auto value = shard.store.Get(key);
    return value ? "VALUE " + *value : "NOT_FOUND";
  }
  if (op == "SET") {
    const auto sp2 = request.find(' ', sp1 + 1);
    const std::string key = request.substr(sp1 + 1, sp2 - sp1 - 1);
    Shard& shard = g_shards[ShardOf(key)];
    skyloft::UthreadMutexGuard guard(&shard.mutex);
    shard.store.Set(key, request.substr(sp2 + 1));
    return "STORED";
  }
  if (op == "SCAN") {
    const auto sp2 = request.find(' ', sp1 + 1);
    const std::string start = request.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto limit = static_cast<std::size_t>(std::stoul(request.substr(sp2 + 1)));
    std::string reply;
    for (int s = 0; s < kShards; s++) {  // heavy: touches every shard
      skyloft::UthreadMutexGuard guard(&g_shards[s].mutex);
      for (const auto& [k, v] : g_shards[s].store.Scan(start, limit)) {
        reply += k + "=" + v + ";";
      }
    }
    return reply.empty() ? "EMPTY" : reply;
  }
  return "ERROR";
}

// Round-trips a request through the UDP codec (client -> wire -> server),
// as the paper's UDP stack does, then serves it.
std::string RoundTrip(const std::string& request) {
  skyloft::UdpDatagram dgram;
  dgram.ip.src_addr = 0x0a000001;
  dgram.ip.dst_addr = 0x0a000002;
  dgram.udp.src_port = 40000;
  dgram.udp.dst_port = 11211;
  dgram.payload.assign(request.begin(), request.end());
  const auto wire = skyloft::SerializeUdp(dgram);
  const auto parsed = skyloft::ParseUdp(wire);
  if (!parsed) {
    return "DROP";
  }
  return Serve(std::string(parsed->payload.begin(), parsed->payload.end()));
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 16;
  const int requests = argc > 3 ? std::atoi(argv[3]) : 5000;

  Runtime rt(RuntimeOptions{.workers = workers, .preempt_period_us = 1000});
  LatencyHistogram latency;
  skyloft::UthreadMutex latency_mutex;

  const auto wall_start = std::chrono::steady_clock::now();
  rt.Run([&] {
    // Preload.
    for (int i = 0; i < 10'000; i++) {
      const std::string key = "user" + std::to_string(i);
      g_shards[ShardOf(key)].store.Set(key, "profile-" + std::to_string(i));
    }
    std::vector<UThread*> threads;
    for (int c = 0; c < clients; c++) {
      threads.push_back(Runtime::Spawn([&, c] {
        unsigned rng = static_cast<unsigned>(c) * 2654435761u + 1;
        for (int r = 0; r < requests; r++) {
          rng = rng * 1664525u + 1013904223u;
          std::string request;
          const unsigned roll = rng % 1000;
          const std::string key = "user" + std::to_string(rng % 10'000);
          if (roll < 2) {
            request = "SCAN user 64";  // rare heavy range query (RocksDB-style)
          } else if (roll < 4) {
            request = "SET " + key + " updated";
          } else {
            request = "GET " + key;  // USR: overwhelmingly GETs
          }
          const auto t0 = std::chrono::steady_clock::now();
          const std::string reply = RoundTrip(request);
          const auto t1 = std::chrono::steady_clock::now();
          if (reply == "ERROR" || reply == "DROP") {
            std::fprintf(stderr, "bad reply for %s\n", request.c_str());
            std::abort();
          }
          {
            skyloft::UthreadMutexGuard guard(&latency_mutex);
            latency.Record(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
          }
          if (r % 64 == 0) {
            Runtime::Yield();
          }
        }
      }));
    }
    for (UThread* t : threads) {
      Runtime::Join(t);
    }
  });
  const auto wall_end = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start).count();

  std::printf("kv_server: %d workers, %d clients x %d requests\n", workers, clients, requests);
  std::printf("throughput: %.0f req/s (wall %.2fs)\n",
              static_cast<double>(latency.Count()) / secs, secs);
  std::printf("latency ns: p50=%lld p99=%lld p99.9=%lld max=%lld\n",
              static_cast<long long>(latency.Percentile(0.5)),
              static_cast<long long>(latency.Percentile(0.99)),
              static_cast<long long>(latency.Percentile(0.999)),
              static_cast<long long>(latency.Max()));
  std::printf("runtime: %llu preemptions, %llu steals\n",
              static_cast<unsigned long long>(rt.preemptions()),
              static_cast<unsigned long long>(rt.steals()));
  return 0;
}
