// A real networked KV server on the Skyloft host runtime.
//
// The serving path lives in src/apps/kv_server_net: per-worker I/O engine
// cores (epoll, or io_uring when built with SKYLOFT_IO_URING), SO_REUSEPORT
// listener sharding, one handler uthread per TCP connection, frame-codec
// requests answered via scatter/gather writev. This main just stands the
// server up on loopback, drives it with a few closed-loop client threads
// over real TCP sockets (plus a UDP spot check), and dumps the metrics
// registry — per-op-kind service latencies, preemption/steal counters —
// as JSON. For the measured sweep, see bench/bench_kv_server.
//
//   ./build/examples/kv_server [workers] [clients] [requests_per_client]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/kv_server_net.h"
#include "src/base/metrics.h"
#include "src/net/frame.h"
#include "src/runtime/uthread.h"

using skyloft::FrameDecoder;
using skyloft::FrameDecodeStatus;
using skyloft::KvServerNet;
using skyloft::KvServerNetOptions;
using skyloft::Runtime;
using skyloft::RuntimeOptions;

namespace {

int DialTcp(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

// Blocking request/response round trip over an established framed stream.
std::string Call(int fd, FrameDecoder* decoder, const std::string& request) {
  const std::string wire = skyloft::EncodeFrame(request);
  if (write(fd, wire.data(), wire.size()) != static_cast<ssize_t>(wire.size())) {
    return "DROP";
  }
  std::string payload;
  char buf[4096];
  while (decoder->Next(&payload) != FrameDecodeStatus::kFrame) {
    if (decoder->poisoned()) {
      return "DROP";
    }
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) {
      return "DROP";
    }
    decoder->Feed(buf, static_cast<std::size_t>(n));
  }
  return payload;
}

void ClientLoop(std::uint16_t port, int id, int requests, std::atomic<int>* done) {
  const int fd = DialTcp(port);
  if (fd < 0) {
    std::fprintf(stderr, "client %d: connect failed\n", id);
    std::abort();
  }
  FrameDecoder decoder;
  unsigned rng = static_cast<unsigned>(id) * 2654435761u + 1;
  for (int r = 0; r < requests; r++) {
    rng = rng * 1664525u + 1013904223u;
    const unsigned roll = rng % 1000;
    const std::string key = "user" + std::to_string(rng % 10'000);
    std::string request;
    if (roll < 2) {
      request = "SCAN user 64";  // rare heavy range query (RocksDB-style)
    } else if (roll < 4) {
      request = "SET " + key + " updated";
    } else {
      request = "GET " + key;  // USR mix: overwhelmingly GETs
    }
    const std::string reply = Call(fd, &decoder, request);
    if (reply == "ERROR" || reply == "DROP") {
      std::fprintf(stderr, "client %d: bad reply for %s\n", id, request.c_str());
      std::abort();
    }
  }
  close(fd);
  done->fetch_add(1, std::memory_order_release);
}

// One framed datagram round trip, exercising the UDP serving path.
bool UdpSpotCheck(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const std::string wire = skyloft::EncodeFrame("GET user1");
  sendto(fd, wire.data(), wire.size(), 0, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  std::uint8_t buf[4096];
  const ssize_t n = recv(fd, buf, sizeof(buf), 0);
  close(fd);
  std::string payload;
  return n > 0 &&
         skyloft::DecodeFrame(buf, static_cast<std::size_t>(n), &payload) ==
             FrameDecodeStatus::kFrame &&
         payload == "VALUE profile-1";
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 16;
  const int requests = argc > 3 ? std::atoi(argv[3]) : 5000;

  Runtime rt(RuntimeOptions{
      .workers = workers, .preempt_period_us = 1000, .io_engine = true});
  std::uint64_t served = 0;
  bool udp_ok = false;
  double secs = 0.0;
  std::string metrics_json;

  rt.Run([&] {
    KvServerNet server(&rt, KvServerNetOptions{});
    server.Start();

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<int> done{0};
    std::vector<std::thread> load;
    for (int c = 0; c < clients; c++) {
      load.emplace_back(ClientLoop, server.tcp_port(), c, requests, &done);
    }
    // Wait runtime-aware: std::thread::join would block this worker pthread
    // and with it the engine core it polls — a serving slice would go dead.
    while (done.load(std::memory_order_acquire) < clients) {
      skyloft::Runtime::SleepFor(1000);
    }
    for (auto& t : load) {
      t.join();  // all finished; joins return immediately
    }
    secs = std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - t0)
               .count();
    // The spot check also blocks in recv, so it too runs off-runtime.
    std::atomic<int> udp_done{0};
    std::thread udp_check([&] {
      udp_ok = UdpSpotCheck(server.udp_port());
      udp_done.store(1, std::memory_order_release);
    });
    while (udp_done.load(std::memory_order_acquire) == 0) {
      skyloft::Runtime::SleepFor(1000);
    }
    udp_check.join();

    served = server.tcp_requests();
    server.Stop();  // merges latency lanes into the registry-linked histograms
    // Snapshot while the server (and its metric group) is still alive.
    metrics_json = skyloft::MetricsRegistry::Global().ToJson();
  });

  std::printf("kv_server: %d workers, %d clients x %d requests over TCP (udp check: %s)\n",
              workers, clients, requests, udp_ok ? "ok" : "FAILED");
  std::printf("throughput: %.0f req/s (wall %.2fs)\n", static_cast<double>(served) / secs,
              secs);
  std::printf("%s\n", metrics_json.c_str());
  return udp_ok ? 0 : 1;
}
