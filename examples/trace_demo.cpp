// Cross-substrate tracing demo: records scheduling events from BOTH
// substrates with the same SchedTracer — a simulated per-CPU engine slicing
// two competing apps (with an injected page fault), then the real host M:N
// runtime preempting a CPU hog via the signal timer — and splices the two
// traces into one chrome://tracing / Perfetto-loadable document.
//
// Run it, then open TRACE_sample.json at https://ui.perfetto.dev (or
// chrome://tracing). Rows are pid=app / tid=worker; "run" and "fault_stall"
// bars are duration events, preemption signals show as instants.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "src/simcore/simulation.h"
#include "src/base/trace.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/round_robin.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

// Simulated substrate: one core, RR at 50 us, user-timer ticks, two apps
// contending plus a fault stall.
std::string SimSlice() {
  Simulation sim;
  MachineConfig mcfg;
  mcfg.num_cores = 1;
  auto machine = std::make_unique<Machine>(&sim, mcfg);
  auto chip = std::make_unique<UintrChip>(machine.get());
  auto kernel = std::make_unique<KernelSim>(machine.get(), chip.get());

  RoundRobinPolicy policy(Micros(50));
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.timer_hz = 100'000;
  cfg.tick_path = TickPath::kUserTimer;
  PerCpuEngine engine(machine.get(), chip.get(), kernel.get(), &policy, cfg);
  App* app_a = engine.CreateApp("a");
  App* app_b = engine.CreateApp("b");
  engine.Start();

  SchedTracer tracer;
  engine.SetTracer(&tracer);
  engine.Submit(engine.NewTask(app_a, Millis(1)));
  engine.Submit(engine.NewTask(app_b, Millis(1)));
  sim.ScheduleAt(Micros(300), [&] { engine.InjectPageFault(0, Micros(200)); });
  sim.RunUntil(Millis(3));

  std::printf("sim slice: %zu events (%zu run spans, %zu app switches, %zu fault stalls)\n",
              tracer.size(), tracer.CountOf(TraceEventType::kRun),
              tracer.CountOf(TraceEventType::kAppSwitch),
              tracer.CountOf(TraceEventType::kFaultStall));
  return tracer.ToJson();
}

// Host substrate: one worker, 2 ms preemption timer, a CPU hog that only a
// preemption signal can break. Events — including the signal-delivery
// instants recorded inside the SIGURG handler — land in the same ring.
std::string HostSlice() {
  SchedTracer tracer(1 << 14);
  RuntimeOptions opts{.workers = 1, .preempt_period_us = 2000};
  opts.tracer = &tracer;
  Runtime rt(opts);
  std::atomic<bool> hog_running{true};
  rt.Run([&] {
    UThread* hog = Runtime::Spawn([&] {
      volatile std::uint64_t x = 0;
      while (hog_running.load(std::memory_order_relaxed)) {
        x = x + 1;
      }
    });
    UThread* other = Runtime::Spawn([&] { hog_running.store(false); });
    Runtime::Join(other);
    Runtime::Join(hog);
  });
  std::printf("host slice: %zu events (%zu run spans, %zu signals, %zu deferred)\n",
              tracer.size(), tracer.CountOf(TraceEventType::kRun),
              tracer.CountOf(TraceEventType::kSignal),
              tracer.CountOf(TraceEventType::kDeferred));
  return tracer.ToJson();
}

int Main() {
  const std::string sim_json = SimSlice();
  const std::string host_json = HostSlice();

  // Each ToJson() is a complete trace-event array; splice the two into one
  // document. (Timestamps share a timeline only nominally — sim time starts
  // at 0, host time is CLOCK_MONOTONIC — but viewers render both fine.)
  const std::string combined = "[" + sim_json.substr(1, sim_json.size() - 2) + "," +
                               host_json.substr(1, host_json.size() - 2) + "]";

  std::ofstream out("TRACE_sample.json");
  if (!out) {
    std::fprintf(stderr, "failed to open TRACE_sample.json for writing\n");
    return 1;
  }
  out << combined << "\n";
  std::printf("wrote TRACE_sample.json (%zu bytes) — load it at https://ui.perfetto.dev\n",
              combined.size() + 1);
  return 0;
}

}  // namespace
}  // namespace skyloft

int main() { return skyloft::Main(); }
