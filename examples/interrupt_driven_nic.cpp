// §6 "Peripheral interrupts" demo: a fully interrupt-driven, kernel-bypass
// NIC receive path on the simulated machine.
//
// Three configurations process the same packet stream:
//   1. kernel IRQ:   NIC MSI -> kernel handler -> signal-ish cost per batch
//   2. polling:      a dedicated core spins on the rings (DPDK style)
//   3. user-IRQ:     NIC MSI delegated to user space with the UINV + SN-bit
//                    PIR trick — no kernel, no burned polling core
// and the demo reports per-packet handling latency for each.
//
//   ./build/examples/interrupt_driven_nic
#include <cstdio>
#include <memory>

#include "src/simcore/simulation.h"
#include "src/base/histogram.h"
#include "src/net/nic.h"
#include "src/simcore/machine.h"
#include "src/uintr/msi_device.h"

using namespace skyloft;

namespace {

constexpr int kPackets = 20'000;
constexpr DurationNs kInterArrival = Micros(3);
constexpr DurationNs kWire = Micros(5);

struct Rig {
  Rig() : machine(&sim, MakeConfig()), chip(&machine) {}
  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.num_cores = 2;
    return config;
  }
  Simulation sim;
  Machine machine;
  UintrChip chip;
};

void GenerateTraffic(Rig& rig, Nic& nic) {
  for (int i = 0; i < kPackets; i++) {
    rig.sim.ScheduleAt(static_cast<TimeNs>(i) * kInterArrival, [&nic, i] {
      Packet p;
      p.flow = static_cast<std::uint64_t>(i);
      p.sent_at = static_cast<TimeNs>(i) * kInterArrival;
      nic.Transmit(p);
    });
  }
}

void Report(const char* name, const LatencyHistogram& h) {
  std::printf("%-12s packets=%llu  p50=%lldns  p99=%lldns  max=%lldns\n", name,
              static_cast<unsigned long long>(h.Count()),
              static_cast<long long>(h.Percentile(0.5)),
              static_cast<long long>(h.Percentile(0.99)),
              static_cast<long long>(h.Max()));
}

// 1. Kernel path: MSI hits the kernel, which hands the packet to user space
// at signal-delivery cost.
void RunKernelIrq() {
  Rig rig;
  LatencyHistogram latency;
  auto nic = std::make_unique<Nic>(&rig.sim, 1, kWire, 1024, nullptr);
  MsiDevice msi(&rig.chip, 0, kNicMsiVector);
  rig.chip.SetLegacyHandler([&](CoreId, int) {
    // Kernel IRQ -> wake the user process: pay a kernel->user notification.
    rig.sim.ScheduleAfter(rig.machine.costs().SignalDeliveryNs(), [&] {
      Packet p;
      while (nic->PollQueue(0, &p)) {
        latency.Record(rig.sim.Now() - p.sent_at);
      }
    });
  });
  nic = std::make_unique<Nic>(&rig.sim, 1, kWire, 1024, [&](int) { msi.Raise(); });
  GenerateTraffic(rig, *nic);
  rig.sim.Run();
  Report("kernel-irq", latency);
}

// 2. Poll mode: a core checks the ring every microsecond (the polling gap is
// the price; the polling core itself is the bigger, unshown price).
void RunPolling() {
  Rig rig;
  LatencyHistogram latency;
  Nic nic(&rig.sim, 1, kWire, 1024, nullptr);
  std::function<void()> poll = [&] {
    Packet p;
    while (nic.PollQueue(0, &p)) {
      latency.Record(rig.sim.Now() - p.sent_at);
    }
    if (latency.Count() < kPackets) {
      rig.sim.ScheduleAfter(Micros(1), poll);
    }
  };
  rig.sim.ScheduleAfter(Micros(1), poll);
  GenerateTraffic(rig, nic);
  rig.sim.Run();
  Report("polling", latency);
}

// 3. User-space interrupt: MSI delegated with the §3.2 recipe.
void RunUserIrq() {
  Rig rig;
  LatencyHistogram latency;
  auto nic = std::make_unique<Nic>(&rig.sim, 1, kWire, 1024, nullptr);
  MsiDevice msi(&rig.chip, 0, kNicMsiVector);
  Upid upid;
  upid.sn = true;
  upid.ndst = 0;
  upid.nv = kNicMsiVector;
  UserInterruptUnit& unit = rig.chip.unit(0);
  unit.SetUinv(kNicMsiVector);
  unit.SetActiveUpid(&upid);
  const int self_idx = rig.chip.RegisterUittEntry(0, &upid, 2);
  unit.SetHandler([&](const UintrFrame& frame) {
    rig.chip.SendUipi(0, self_idx);  // re-arm
    // Handler cost before touching the data.
    rig.sim.ScheduleAfter(frame.receive_cost_ns, [&] {
      Packet p;
      while (nic->PollQueue(0, &p)) {
        latency.Record(rig.sim.Now() - p.sent_at);
      }
    });
  });
  rig.chip.SendUipi(0, self_idx);  // prime the PIR
  nic = std::make_unique<Nic>(&rig.sim, 1, kWire, 1024, [&](int) { msi.Raise(); });
  GenerateTraffic(rig, *nic);
  rig.sim.Run();
  Report("user-irq", latency);
}

}  // namespace

int main() {
  std::printf("interrupt-driven NIC rx, %d packets @ one every %lld ns (wire %lld ns)\n",
              kPackets, static_cast<long long>(kInterArrival), static_cast<long long>(kWire));
  RunKernelIrq();
  RunPolling();
  RunUserIrq();
  std::printf(
      "\nuser-irq achieves polling-class latency without a dedicated polling\n"
      "core, and beats the kernel path by the signal-delivery cost (~2.6us).\n");
  return 0;
}
