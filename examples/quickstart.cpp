// Quickstart: the Skyloft host runtime in 60 lines.
//
// Spawns user-level threads on an M:N runtime with work stealing, shows
// cooperative scheduling (yield), blocking synchronization (mutex +
// condvar), and microsecond-scale preemption of an uncooperative thread —
// the capability UINTR provides in the paper, here via the signal-timer
// fallback (see DESIGN.md).
//
//   ./build/examples/quickstart
#include <atomic>
#include <cstdio>

#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

using skyloft::Runtime;
using skyloft::RuntimeOptions;
using skyloft::UThread;

int main() {
  // Two workers, 1 ms preemption timer (the UINTR stand-in).
  Runtime rt(RuntimeOptions{.workers = 2, .preempt_period_us = 1000});

  rt.Run([&] {
    std::printf("[1] spawn/join: ");
    UThread* child = Runtime::Spawn([] { std::printf("hello from a uthread\n"); });
    Runtime::Join(child);

    std::printf("[2] cooperative yield: ");
    UThread* a = Runtime::Spawn([] {
      for (int i = 0; i < 3; i++) {
        std::printf("A");
        Runtime::Yield();
      }
    });
    UThread* b = Runtime::Spawn([] {
      for (int i = 0; i < 3; i++) {
        std::printf("B");
        Runtime::Yield();
      }
    });
    Runtime::Join(a);
    Runtime::Join(b);
    std::printf("  (interleaved)\n");

    std::printf("[3] mutex + condvar: ");
    skyloft::UthreadMutex mutex;
    skyloft::UthreadCondVar cv;
    bool ready = false;
    UThread* waiter = Runtime::Spawn([&] {
      skyloft::UthreadMutexGuard guard(&mutex);
      while (!ready) {
        cv.Wait(&mutex);
      }
      std::printf("woken exactly once\n");
    });
    Runtime::Yield();
    {
      skyloft::UthreadMutexGuard guard(&mutex);
      ready = true;
    }
    cv.Signal();
    Runtime::Join(waiter);

    std::printf("[4] preempting a CPU hog: ");
    std::atomic<bool> stop{false};
    UThread* hog = Runtime::Spawn([&] {
      volatile unsigned long spin = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        spin = spin + 1;  // never yields: only preemption lets others run
      }
    });
    UThread* rescuer = Runtime::Spawn([&] { stop.store(true); });
    Runtime::Join(rescuer);
    Runtime::Join(hog);
    std::printf("rescuer ran despite the hog\n");
  });

  std::printf("preemptions delivered: %llu, steals: %llu\n",
              static_cast<unsigned long long>(rt.preemptions()),
              static_cast<unsigned long long>(rt.steals()));
  return 0;
}
