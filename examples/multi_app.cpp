// Multi-application core sharing demo (§3.3, §5.2): a latency-critical app
// and a best-effort batch app share 8 isolated cores under the Shenango-style
// core allocator, with the Single Binding Rule enforced by the simulated
// Skyloft kernel module.
//
// The LC load alternates between quiet and burst phases; the demo prints how
// many cores the batch app holds over time and the LC tail latency per phase.
//
//   ./build/examples/multi_app
#include <cstdio>
#include <vector>

#include "src/apps/workloads.h"
#include "src/baselines/systems.h"
#include "src/net/loadgen.h"

using namespace skyloft;

int main() {
  constexpr int kWorkers = 8;
  SystemSetup setup = MakeSkyloftShinjuku(kWorkers, Micros(30), /*core_alloc=*/true);
  App* batch = setup.engine->CreateApp("batch", /*best_effort=*/true);
  setup.central()->AttachBestEffortApp(batch);

  const double capacity = kWorkers / (MixMeanNs(DispersiveMix()) / 1e9);

  std::printf("phase     load      LC p99(us)   batch cores   batch CPU share\n");
  for (int phase = 0; phase < 6; phase++) {
    const bool burst = phase % 2 == 1;
    const double rate = capacity * (burst ? 0.85 : 0.05);

    PoissonClient::Options options;
    options.rate_rps = rate;
    options.seed = static_cast<std::uint64_t>(phase) + 1;
    options.rss_route = false;
    PoissonClient client(setup.engine.get(), setup.app, DispersiveMix(), options);
    client.Start();
    setup.sim->RunUntil(setup.sim->Now() + Millis(30));  // settle into the phase
    setup.engine->ResetStats();
    setup.sim->RunUntil(setup.sim->Now() + Millis(100));  // measured window

    std::printf("%-9s %5.0f%%   %10lld   %11d   %15.2f\n", burst ? "burst" : "quiet",
                burst ? 85.0 : 5.0,
                static_cast<long long>(
                    setup.engine->stats().request_latency.Percentile(0.99) / 1000),
                setup.central()->BestEffortWorkers(), setup.engine->CpuShare(batch));
    setup.kernel->CheckBindingRule();

    // Drain the in-flight tail (the 10 ms scans) before the next phase so
    // each phase is measured in isolation.
    client.Stop();
    setup.sim->RunUntil(setup.sim->Now() + Millis(200));
  }
  std::printf(
      "\nQuiet phases: the allocator hands almost every core to the batch app.\n"
      "Burst phases: cores snap back to the LC app within the 5 us congestion\n"
      "check, keeping its p99 flat — the Fig. 7b/7c behaviour.\n");
  return 0;
}
