file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_rocksdb.dir/bench_fig8b_rocksdb.cpp.o"
  "CMakeFiles/bench_fig8b_rocksdb.dir/bench_fig8b_rocksdb.cpp.o.d"
  "bench_fig8b_rocksdb"
  "bench_fig8b_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
