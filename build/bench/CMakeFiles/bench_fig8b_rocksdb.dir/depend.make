# Empty dependencies file for bench_fig8b_rocksdb.
# This may be replaced when dependencies are built.
