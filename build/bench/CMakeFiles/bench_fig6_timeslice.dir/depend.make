# Empty dependencies file for bench_fig6_timeslice.
# This may be replaced when dependencies are built.
