file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_timeslice.dir/bench_fig6_timeslice.cpp.o"
  "CMakeFiles/bench_fig6_timeslice.dir/bench_fig6_timeslice.cpp.o.d"
  "bench_fig6_timeslice"
  "bench_fig6_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
