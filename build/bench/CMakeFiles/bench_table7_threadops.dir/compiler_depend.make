# Empty compiler generated dependencies file for bench_table7_threadops.
# This may be replaced when dependencies are built.
