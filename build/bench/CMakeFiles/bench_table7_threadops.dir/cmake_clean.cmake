file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_threadops.dir/bench_table7_threadops.cpp.o"
  "CMakeFiles/bench_table7_threadops.dir/bench_table7_threadops.cpp.o.d"
  "bench_table7_threadops"
  "bench_table7_threadops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_threadops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
