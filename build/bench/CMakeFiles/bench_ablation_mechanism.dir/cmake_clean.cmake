file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mechanism.dir/bench_ablation_mechanism.cpp.o"
  "CMakeFiles/bench_ablation_mechanism.dir/bench_ablation_mechanism.cpp.o.d"
  "bench_ablation_mechanism"
  "bench_ablation_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
