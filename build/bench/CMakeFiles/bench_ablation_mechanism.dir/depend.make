# Empty dependencies file for bench_ablation_mechanism.
# This may be replaced when dependencies are built.
