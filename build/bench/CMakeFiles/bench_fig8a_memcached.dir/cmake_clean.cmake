file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_memcached.dir/bench_fig8a_memcached.cpp.o"
  "CMakeFiles/bench_fig8a_memcached.dir/bench_fig8a_memcached.cpp.o.d"
  "bench_fig8a_memcached"
  "bench_fig8a_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
