# Empty compiler generated dependencies file for bench_fig8a_memcached.
# This may be replaced when dependencies are built.
