file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_preemption.dir/bench_table6_preemption.cpp.o"
  "CMakeFiles/bench_table6_preemption.dir/bench_table6_preemption.cpp.o.d"
  "bench_table6_preemption"
  "bench_table6_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
