# Empty dependencies file for bench_table6_preemption.
# This may be replaced when dependencies are built.
