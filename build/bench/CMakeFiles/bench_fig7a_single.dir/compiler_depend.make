# Empty compiler generated dependencies file for bench_fig7a_single.
# This may be replaced when dependencies are built.
