file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_schbench.dir/bench_fig5_schbench.cpp.o"
  "CMakeFiles/bench_fig5_schbench.dir/bench_fig5_schbench.cpp.o.d"
  "bench_fig5_schbench"
  "bench_fig5_schbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_schbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
