# Empty compiler generated dependencies file for bench_fig5_schbench.
# This may be replaced when dependencies are built.
