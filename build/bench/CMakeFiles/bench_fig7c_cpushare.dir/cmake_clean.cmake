file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c_cpushare.dir/bench_fig7c_cpushare.cpp.o"
  "CMakeFiles/bench_fig7c_cpushare.dir/bench_fig7c_cpushare.cpp.o.d"
  "bench_fig7c_cpushare"
  "bench_fig7c_cpushare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_cpushare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
