# Empty dependencies file for bench_fig7c_cpushare.
# This may be replaced when dependencies are built.
