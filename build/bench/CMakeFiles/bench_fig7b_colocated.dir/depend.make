# Empty dependencies file for bench_fig7b_colocated.
# This may be replaced when dependencies are built.
