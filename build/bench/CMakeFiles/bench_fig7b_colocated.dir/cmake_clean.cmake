file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_colocated.dir/bench_fig7b_colocated.cpp.o"
  "CMakeFiles/bench_fig7b_colocated.dir/bench_fig7b_colocated.cpp.o.d"
  "bench_fig7b_colocated"
  "bench_fig7b_colocated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_colocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
