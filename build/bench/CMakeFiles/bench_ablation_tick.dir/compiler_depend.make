# Empty compiler generated dependencies file for bench_ablation_tick.
# This may be replaced when dependencies are built.
