file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tick.dir/bench_ablation_tick.cpp.o"
  "CMakeFiles/bench_ablation_tick.dir/bench_ablation_tick.cpp.o.d"
  "bench_ablation_tick"
  "bench_ablation_tick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
