file(REMOVE_RECURSE
  "CMakeFiles/bench_s54_appswitch.dir/bench_s54_appswitch.cpp.o"
  "CMakeFiles/bench_s54_appswitch.dir/bench_s54_appswitch.cpp.o.d"
  "bench_s54_appswitch"
  "bench_s54_appswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s54_appswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
