# Empty dependencies file for bench_s54_appswitch.
# This may be replaced when dependencies are built.
