file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_loc.dir/bench_table4_loc.cpp.o"
  "CMakeFiles/bench_table4_loc.dir/bench_table4_loc.cpp.o.d"
  "bench_table4_loc"
  "bench_table4_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
