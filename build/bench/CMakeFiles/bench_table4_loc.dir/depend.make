# Empty dependencies file for bench_table4_loc.
# This may be replaced when dependencies are built.
