# Empty compiler generated dependencies file for kernelsim_test.
# This may be replaced when dependencies are built.
