file(REMOVE_RECURSE
  "CMakeFiles/kernelsim_test.dir/kernelsim_test.cpp.o"
  "CMakeFiles/kernelsim_test.dir/kernelsim_test.cpp.o.d"
  "kernelsim_test"
  "kernelsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
