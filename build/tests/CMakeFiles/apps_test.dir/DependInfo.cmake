
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/apps_test.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/skyloft_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/skyloft_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skyloft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/skyloft_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/libos/CMakeFiles/skyloft_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/skyloft_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/uintr/CMakeFiles/skyloft_uintr.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/skyloft_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/skyloft_base.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/skyloft_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
