# Empty dependencies file for timer_wheel_test.
# This may be replaced when dependencies are built.
