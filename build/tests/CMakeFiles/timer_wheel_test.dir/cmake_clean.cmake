file(REMOVE_RECURSE
  "CMakeFiles/timer_wheel_test.dir/timer_wheel_test.cpp.o"
  "CMakeFiles/timer_wheel_test.dir/timer_wheel_test.cpp.o.d"
  "timer_wheel_test"
  "timer_wheel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_wheel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
