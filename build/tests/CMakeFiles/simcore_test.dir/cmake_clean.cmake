file(REMOVE_RECURSE
  "CMakeFiles/simcore_test.dir/simcore_test.cpp.o"
  "CMakeFiles/simcore_test.dir/simcore_test.cpp.o.d"
  "simcore_test"
  "simcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
