# Empty dependencies file for uintr_test.
# This may be replaced when dependencies are built.
