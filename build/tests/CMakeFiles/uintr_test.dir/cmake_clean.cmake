file(REMOVE_RECURSE
  "CMakeFiles/uintr_test.dir/uintr_test.cpp.o"
  "CMakeFiles/uintr_test.dir/uintr_test.cpp.o.d"
  "uintr_test"
  "uintr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uintr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
