file(REMOVE_RECURSE
  "CMakeFiles/libos_test.dir/libos_test.cpp.o"
  "CMakeFiles/libos_test.dir/libos_test.cpp.o.d"
  "libos_test"
  "libos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
