file(REMOVE_RECURSE
  "CMakeFiles/runtime_sync2_test.dir/runtime_sync2_test.cpp.o"
  "CMakeFiles/runtime_sync2_test.dir/runtime_sync2_test.cpp.o.d"
  "runtime_sync2_test"
  "runtime_sync2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_sync2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
