# Empty compiler generated dependencies file for runtime_sync2_test.
# This may be replaced when dependencies are built.
