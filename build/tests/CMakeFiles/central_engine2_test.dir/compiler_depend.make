# Empty compiler generated dependencies file for central_engine2_test.
# This may be replaced when dependencies are built.
