file(REMOVE_RECURSE
  "CMakeFiles/central_engine2_test.dir/central_engine2_test.cpp.o"
  "CMakeFiles/central_engine2_test.dir/central_engine2_test.cpp.o.d"
  "central_engine2_test"
  "central_engine2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_engine2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
