# Empty dependencies file for skyloft_runtime.
# This may be replaced when dependencies are built.
