file(REMOVE_RECURSE
  "CMakeFiles/skyloft_runtime.dir/context.cpp.o"
  "CMakeFiles/skyloft_runtime.dir/context.cpp.o.d"
  "CMakeFiles/skyloft_runtime.dir/sync.cpp.o"
  "CMakeFiles/skyloft_runtime.dir/sync.cpp.o.d"
  "CMakeFiles/skyloft_runtime.dir/uthread.cpp.o"
  "CMakeFiles/skyloft_runtime.dir/uthread.cpp.o.d"
  "libskyloft_runtime.a"
  "libskyloft_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
