file(REMOVE_RECURSE
  "libskyloft_runtime.a"
)
