
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/context.cpp" "src/runtime/CMakeFiles/skyloft_runtime.dir/context.cpp.o" "gcc" "src/runtime/CMakeFiles/skyloft_runtime.dir/context.cpp.o.d"
  "/root/repo/src/runtime/sync.cpp" "src/runtime/CMakeFiles/skyloft_runtime.dir/sync.cpp.o" "gcc" "src/runtime/CMakeFiles/skyloft_runtime.dir/sync.cpp.o.d"
  "/root/repo/src/runtime/uthread.cpp" "src/runtime/CMakeFiles/skyloft_runtime.dir/uthread.cpp.o" "gcc" "src/runtime/CMakeFiles/skyloft_runtime.dir/uthread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skyloft_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
