file(REMOVE_RECURSE
  "CMakeFiles/skyloft_baselines.dir/systems.cpp.o"
  "CMakeFiles/skyloft_baselines.dir/systems.cpp.o.d"
  "libskyloft_baselines.a"
  "libskyloft_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
