# Empty compiler generated dependencies file for skyloft_baselines.
# This may be replaced when dependencies are built.
