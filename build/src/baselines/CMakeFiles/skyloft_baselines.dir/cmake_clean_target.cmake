file(REMOVE_RECURSE
  "libskyloft_baselines.a"
)
