file(REMOVE_RECURSE
  "libskyloft_apps.a"
)
