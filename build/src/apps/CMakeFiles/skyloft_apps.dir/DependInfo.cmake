
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/batch_app.cpp" "src/apps/CMakeFiles/skyloft_apps.dir/batch_app.cpp.o" "gcc" "src/apps/CMakeFiles/skyloft_apps.dir/batch_app.cpp.o.d"
  "/root/repo/src/apps/kvstore.cpp" "src/apps/CMakeFiles/skyloft_apps.dir/kvstore.cpp.o" "gcc" "src/apps/CMakeFiles/skyloft_apps.dir/kvstore.cpp.o.d"
  "/root/repo/src/apps/memcached_protocol.cpp" "src/apps/CMakeFiles/skyloft_apps.dir/memcached_protocol.cpp.o" "gcc" "src/apps/CMakeFiles/skyloft_apps.dir/memcached_protocol.cpp.o.d"
  "/root/repo/src/apps/schbench.cpp" "src/apps/CMakeFiles/skyloft_apps.dir/schbench.cpp.o" "gcc" "src/apps/CMakeFiles/skyloft_apps.dir/schbench.cpp.o.d"
  "/root/repo/src/apps/workloads.cpp" "src/apps/CMakeFiles/skyloft_apps.dir/workloads.cpp.o" "gcc" "src/apps/CMakeFiles/skyloft_apps.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/skyloft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/libos/CMakeFiles/skyloft_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/skyloft_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/uintr/CMakeFiles/skyloft_uintr.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/skyloft_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/skyloft_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
