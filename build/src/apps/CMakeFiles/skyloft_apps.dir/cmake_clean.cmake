file(REMOVE_RECURSE
  "CMakeFiles/skyloft_apps.dir/batch_app.cpp.o"
  "CMakeFiles/skyloft_apps.dir/batch_app.cpp.o.d"
  "CMakeFiles/skyloft_apps.dir/kvstore.cpp.o"
  "CMakeFiles/skyloft_apps.dir/kvstore.cpp.o.d"
  "CMakeFiles/skyloft_apps.dir/memcached_protocol.cpp.o"
  "CMakeFiles/skyloft_apps.dir/memcached_protocol.cpp.o.d"
  "CMakeFiles/skyloft_apps.dir/schbench.cpp.o"
  "CMakeFiles/skyloft_apps.dir/schbench.cpp.o.d"
  "CMakeFiles/skyloft_apps.dir/workloads.cpp.o"
  "CMakeFiles/skyloft_apps.dir/workloads.cpp.o.d"
  "libskyloft_apps.a"
  "libskyloft_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
