# Empty dependencies file for skyloft_apps.
# This may be replaced when dependencies are built.
