file(REMOVE_RECURSE
  "libskyloft_base.a"
)
