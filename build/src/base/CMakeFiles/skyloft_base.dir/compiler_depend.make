# Empty compiler generated dependencies file for skyloft_base.
# This may be replaced when dependencies are built.
