file(REMOVE_RECURSE
  "CMakeFiles/skyloft_base.dir/histogram.cpp.o"
  "CMakeFiles/skyloft_base.dir/histogram.cpp.o.d"
  "CMakeFiles/skyloft_base.dir/logging.cpp.o"
  "CMakeFiles/skyloft_base.dir/logging.cpp.o.d"
  "libskyloft_base.a"
  "libskyloft_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
