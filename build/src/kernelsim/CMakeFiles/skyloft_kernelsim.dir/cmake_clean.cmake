file(REMOVE_RECURSE
  "CMakeFiles/skyloft_kernelsim.dir/kernel_sim.cpp.o"
  "CMakeFiles/skyloft_kernelsim.dir/kernel_sim.cpp.o.d"
  "libskyloft_kernelsim.a"
  "libskyloft_kernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
