# Empty compiler generated dependencies file for skyloft_kernelsim.
# This may be replaced when dependencies are built.
