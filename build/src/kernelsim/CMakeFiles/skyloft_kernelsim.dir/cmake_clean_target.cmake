file(REMOVE_RECURSE
  "libskyloft_kernelsim.a"
)
