file(REMOVE_RECURSE
  "CMakeFiles/skyloft_uintr.dir/apic_timer.cpp.o"
  "CMakeFiles/skyloft_uintr.dir/apic_timer.cpp.o.d"
  "CMakeFiles/skyloft_uintr.dir/uintr_chip.cpp.o"
  "CMakeFiles/skyloft_uintr.dir/uintr_chip.cpp.o.d"
  "libskyloft_uintr.a"
  "libskyloft_uintr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_uintr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
