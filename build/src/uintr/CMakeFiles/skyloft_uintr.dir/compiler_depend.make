# Empty compiler generated dependencies file for skyloft_uintr.
# This may be replaced when dependencies are built.
