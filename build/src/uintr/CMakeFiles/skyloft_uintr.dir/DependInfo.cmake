
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uintr/apic_timer.cpp" "src/uintr/CMakeFiles/skyloft_uintr.dir/apic_timer.cpp.o" "gcc" "src/uintr/CMakeFiles/skyloft_uintr.dir/apic_timer.cpp.o.d"
  "/root/repo/src/uintr/uintr_chip.cpp" "src/uintr/CMakeFiles/skyloft_uintr.dir/uintr_chip.cpp.o" "gcc" "src/uintr/CMakeFiles/skyloft_uintr.dir/uintr_chip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/skyloft_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/skyloft_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
