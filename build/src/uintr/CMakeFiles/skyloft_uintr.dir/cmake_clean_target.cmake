file(REMOVE_RECURSE
  "libskyloft_uintr.a"
)
