file(REMOVE_RECURSE
  "CMakeFiles/skyloft_libos.dir/central_engine.cpp.o"
  "CMakeFiles/skyloft_libos.dir/central_engine.cpp.o.d"
  "CMakeFiles/skyloft_libos.dir/engine.cpp.o"
  "CMakeFiles/skyloft_libos.dir/engine.cpp.o.d"
  "CMakeFiles/skyloft_libos.dir/percpu_engine.cpp.o"
  "CMakeFiles/skyloft_libos.dir/percpu_engine.cpp.o.d"
  "CMakeFiles/skyloft_libos.dir/trace.cpp.o"
  "CMakeFiles/skyloft_libos.dir/trace.cpp.o.d"
  "libskyloft_libos.a"
  "libskyloft_libos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_libos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
