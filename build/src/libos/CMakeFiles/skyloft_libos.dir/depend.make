# Empty dependencies file for skyloft_libos.
# This may be replaced when dependencies are built.
