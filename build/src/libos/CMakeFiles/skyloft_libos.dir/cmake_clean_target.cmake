file(REMOVE_RECURSE
  "libskyloft_libos.a"
)
