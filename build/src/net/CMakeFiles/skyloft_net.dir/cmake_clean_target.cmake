file(REMOVE_RECURSE
  "libskyloft_net.a"
)
