# Empty dependencies file for skyloft_net.
# This may be replaced when dependencies are built.
