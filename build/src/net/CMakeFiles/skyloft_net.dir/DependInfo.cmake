
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/loadgen.cpp" "src/net/CMakeFiles/skyloft_net.dir/loadgen.cpp.o" "gcc" "src/net/CMakeFiles/skyloft_net.dir/loadgen.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/skyloft_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/skyloft_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/skyloft_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/skyloft_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/skyloft_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/skyloft_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/libos/CMakeFiles/skyloft_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/skyloft_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/uintr/CMakeFiles/skyloft_uintr.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/skyloft_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/skyloft_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
