file(REMOVE_RECURSE
  "CMakeFiles/skyloft_net.dir/loadgen.cpp.o"
  "CMakeFiles/skyloft_net.dir/loadgen.cpp.o.d"
  "CMakeFiles/skyloft_net.dir/nic.cpp.o"
  "CMakeFiles/skyloft_net.dir/nic.cpp.o.d"
  "CMakeFiles/skyloft_net.dir/tcp.cpp.o"
  "CMakeFiles/skyloft_net.dir/tcp.cpp.o.d"
  "CMakeFiles/skyloft_net.dir/udp.cpp.o"
  "CMakeFiles/skyloft_net.dir/udp.cpp.o.d"
  "libskyloft_net.a"
  "libskyloft_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
