file(REMOVE_RECURSE
  "libskyloft_policies.a"
)
