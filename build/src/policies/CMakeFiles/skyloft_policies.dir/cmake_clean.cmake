file(REMOVE_RECURSE
  "CMakeFiles/skyloft_policies.dir/cfs.cpp.o"
  "CMakeFiles/skyloft_policies.dir/cfs.cpp.o.d"
  "CMakeFiles/skyloft_policies.dir/eevdf.cpp.o"
  "CMakeFiles/skyloft_policies.dir/eevdf.cpp.o.d"
  "CMakeFiles/skyloft_policies.dir/round_robin.cpp.o"
  "CMakeFiles/skyloft_policies.dir/round_robin.cpp.o.d"
  "CMakeFiles/skyloft_policies.dir/shinjuku.cpp.o"
  "CMakeFiles/skyloft_policies.dir/shinjuku.cpp.o.d"
  "CMakeFiles/skyloft_policies.dir/work_stealing.cpp.o"
  "CMakeFiles/skyloft_policies.dir/work_stealing.cpp.o.d"
  "libskyloft_policies.a"
  "libskyloft_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
