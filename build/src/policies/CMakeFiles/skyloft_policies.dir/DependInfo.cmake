
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/cfs.cpp" "src/policies/CMakeFiles/skyloft_policies.dir/cfs.cpp.o" "gcc" "src/policies/CMakeFiles/skyloft_policies.dir/cfs.cpp.o.d"
  "/root/repo/src/policies/eevdf.cpp" "src/policies/CMakeFiles/skyloft_policies.dir/eevdf.cpp.o" "gcc" "src/policies/CMakeFiles/skyloft_policies.dir/eevdf.cpp.o.d"
  "/root/repo/src/policies/round_robin.cpp" "src/policies/CMakeFiles/skyloft_policies.dir/round_robin.cpp.o" "gcc" "src/policies/CMakeFiles/skyloft_policies.dir/round_robin.cpp.o.d"
  "/root/repo/src/policies/shinjuku.cpp" "src/policies/CMakeFiles/skyloft_policies.dir/shinjuku.cpp.o" "gcc" "src/policies/CMakeFiles/skyloft_policies.dir/shinjuku.cpp.o.d"
  "/root/repo/src/policies/work_stealing.cpp" "src/policies/CMakeFiles/skyloft_policies.dir/work_stealing.cpp.o" "gcc" "src/policies/CMakeFiles/skyloft_policies.dir/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/libos/CMakeFiles/skyloft_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/skyloft_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/uintr/CMakeFiles/skyloft_uintr.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/skyloft_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/skyloft_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
