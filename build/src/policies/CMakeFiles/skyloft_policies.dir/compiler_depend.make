# Empty compiler generated dependencies file for skyloft_policies.
# This may be replaced when dependencies are built.
