file(REMOVE_RECURSE
  "libskyloft_simcore.a"
)
