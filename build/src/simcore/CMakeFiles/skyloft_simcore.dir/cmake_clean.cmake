file(REMOVE_RECURSE
  "CMakeFiles/skyloft_simcore.dir/simulation.cpp.o"
  "CMakeFiles/skyloft_simcore.dir/simulation.cpp.o.d"
  "libskyloft_simcore.a"
  "libskyloft_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloft_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
