# Empty dependencies file for skyloft_simcore.
# This may be replaced when dependencies are built.
