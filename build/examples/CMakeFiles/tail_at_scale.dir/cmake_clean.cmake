file(REMOVE_RECURSE
  "CMakeFiles/tail_at_scale.dir/tail_at_scale.cpp.o"
  "CMakeFiles/tail_at_scale.dir/tail_at_scale.cpp.o.d"
  "tail_at_scale"
  "tail_at_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_at_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
