# Empty dependencies file for tail_at_scale.
# This may be replaced when dependencies are built.
