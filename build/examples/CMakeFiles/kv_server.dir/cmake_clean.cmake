file(REMOVE_RECURSE
  "CMakeFiles/kv_server.dir/kv_server.cpp.o"
  "CMakeFiles/kv_server.dir/kv_server.cpp.o.d"
  "kv_server"
  "kv_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
