# Empty dependencies file for kv_server.
# This may be replaced when dependencies are built.
