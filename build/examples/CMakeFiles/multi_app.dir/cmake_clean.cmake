file(REMOVE_RECURSE
  "CMakeFiles/multi_app.dir/multi_app.cpp.o"
  "CMakeFiles/multi_app.dir/multi_app.cpp.o.d"
  "multi_app"
  "multi_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
