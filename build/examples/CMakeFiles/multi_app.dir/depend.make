# Empty dependencies file for multi_app.
# This may be replaced when dependencies are built.
