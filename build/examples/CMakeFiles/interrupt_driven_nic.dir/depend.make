# Empty dependencies file for interrupt_driven_nic.
# This may be replaced when dependencies are built.
