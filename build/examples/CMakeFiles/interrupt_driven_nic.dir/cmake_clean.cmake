file(REMOVE_RECURSE
  "CMakeFiles/interrupt_driven_nic.dir/interrupt_driven_nic.cpp.o"
  "CMakeFiles/interrupt_driven_nic.dir/interrupt_driven_nic.cpp.o.d"
  "interrupt_driven_nic"
  "interrupt_driven_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_driven_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
